package workloads

import (
	"math/rand"
)

// Graph is a synthetic directed graph in CSR form. The degree sequence is
// Zipf-skewed to approximate the power-law graphs the AGAS literature
// evaluates on (a handful of very-high-degree vertices create hot spots).
//
// The CSR arrays are process-global, read-only after construction; the
// BFS actions partition their *work* by block ownership, which is the
// distributed part the experiments measure. (Shipping the adjacency
// itself as GAS bytes would only add constant-factor decode work to every
// mode equally; the substitution is documented in DESIGN.md.)
type Graph struct {
	N       uint32
	Offsets []uint32 // len N+1
	Targets []uint32 // len Offsets[N]
	// Weights parallels Targets (edge weights in [1, 15]); BFS ignores
	// it, SSSP relaxes with it.
	Weights []uint32
}

// GenGraph builds a graph with n vertices and ~avgDegree edges per
// vertex. Deterministic for a given seed.
func GenGraph(n uint32, avgDegree int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	// Zipf-skewed out-degrees, rescaled to hit the requested average.
	zip := rand.NewZipf(rng, 1.4, 1, uint64(4*avgDegree))
	degs := make([]int, n)
	total := 0
	for i := range degs {
		degs[i] = int(zip.Uint64()) + 1
		total += degs[i]
	}
	want := int(n) * avgDegree
	// Top up or trim uniformly so the edge count is predictable.
	for total < want {
		degs[rng.Intn(int(n))]++
		total++
	}
	for total > want {
		v := rng.Intn(int(n))
		if degs[v] > 1 {
			degs[v]--
			total--
		}
	}
	g := &Graph{N: n, Offsets: make([]uint32, n+1)}
	for i := uint32(0); i < n; i++ {
		g.Offsets[i+1] = g.Offsets[i] + uint32(degs[i])
	}
	g.Targets = make([]uint32, g.Offsets[n])
	g.Weights = make([]uint32, g.Offsets[n])
	for i := uint32(0); i < n; i++ {
		for e := g.Offsets[i]; e < g.Offsets[i+1]; e++ {
			g.Targets[e] = rng.Uint32() % n
			g.Weights[e] = 1 + rng.Uint32()%15
		}
	}
	return g
}

// Edges returns the edge count.
func (g *Graph) Edges() int { return len(g.Targets) }

// Out returns v's adjacency list.
func (g *Graph) Out(v uint32) []uint32 {
	return g.Targets[g.Offsets[v]:g.Offsets[v+1]]
}

// OutW returns v's adjacency list with weights.
func (g *Graph) OutW(v uint32) ([]uint32, []uint32) {
	return g.Targets[g.Offsets[v]:g.Offsets[v+1]], g.Weights[g.Offsets[v]:g.Offsets[v+1]]
}

// SeqSSSP computes reference weighted distances (Dijkstra with a simple
// binary heap) for validation. Unreached vertices get ^uint32(0).
func (g *Graph) SeqSSSP(root uint32) []uint32 {
	const inf = ^uint32(0)
	dist := make([]uint32, g.N)
	for i := range dist {
		dist[i] = inf
	}
	dist[root] = 0
	type item struct {
		v uint32
		d uint32
	}
	heap := []item{{root, 0}}
	push := func(it item) {
		heap = append(heap, it)
		for i := len(heap) - 1; i > 0; {
			p := (i - 1) / 2
			if heap[p].d <= heap[i].d {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() item {
		top := heap[0]
		heap[0] = heap[len(heap)-1]
		heap = heap[:len(heap)-1]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(heap) && heap[l].d < heap[small].d {
				small = l
			}
			if r < len(heap) && heap[r].d < heap[small].d {
				small = r
			}
			if small == i {
				break
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
		return top
	}
	for len(heap) > 0 {
		it := pop()
		if it.d > dist[it.v] {
			continue
		}
		outs, ws := g.OutW(it.v)
		for e, u := range outs {
			if nd := it.d + ws[e]; nd < dist[u] {
				dist[u] = nd
				push(item{u, nd})
			}
		}
	}
	return dist
}

// SeqBFS computes reference distances on the driver for validation.
// Unreached vertices get ^uint32(0).
func (g *Graph) SeqBFS(root uint32) []uint32 {
	const inf = ^uint32(0)
	dist := make([]uint32, g.N)
	for i := range dist {
		dist[i] = inf
	}
	dist[root] = 0
	frontier := []uint32{root}
	for len(frontier) > 0 {
		var next []uint32
		for _, v := range frontier {
			for _, u := range g.Out(v) {
				if dist[u] == inf {
					dist[u] = dist[v] + 1
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	return dist
}
