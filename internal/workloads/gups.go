package workloads

import (
	"fmt"
	"math/rand"
	"sync"

	"nmvgas/internal/gas"
	"nmvgas/internal/parcel"
	"nmvgas/internal/runtime"
)

// KeyDist selects how update keys are drawn.
type KeyDist uint8

const (
	// KeysUniform draws keys uniformly over the table (classic GUPS).
	KeysUniform KeyDist = iota
	// KeysZipf draws keys with a Zipf(1.2) skew: a few blocks get most
	// of the traffic, which is what gives migration something to win.
	KeysZipf
)

// GUPS is the random-access update benchmark: each rank fires updates at
// random 8-byte words of a distributed table; every update is a parcel
// that executes a read-xor-write at the word's current owner.
type GUPS struct {
	w      *runtime.World
	update parcel.ActionID
	pump   *Pump

	mu   sync.Mutex
	lay  gas.Layout
	rngs []*rand.Rand
	zips []*rand.Zipf
	dist KeyDist
}

// NewGUPS registers the GUPS actions. Call before World.Start. The name
// distinguishes multiple instances in one world.
func NewGUPS(w *runtime.World, name string) *GUPS {
	g := &GUPS{w: w}
	g.update = w.Register(name+".update", g.onUpdate)
	g.pump = NewPump(w, name+".pump")
	g.pump.Issue = g.issue
	return g
}

// Setup allocates the table: nblocks blocks of bsize bytes, distributed
// cyclically, and seeds the per-rank key streams.
func (g *GUPS) Setup(bsize, nblocks uint32, dist KeyDist, seed int64) error {
	if bsize%8 != 0 {
		return fmt.Errorf("workloads: gups bsize %d not 8-byte aligned", bsize)
	}
	lay, err := g.w.AllocCyclic(0, bsize, nblocks)
	if err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.lay = lay
	g.dist = dist
	g.rngs = g.rngs[:0]
	g.zips = g.zips[:0]
	words := lay.Bytes() / 8
	for r := 0; r < g.w.Ranks(); r++ {
		rng := rand.New(rand.NewSource(seed + int64(r)*1_000_003))
		g.rngs = append(g.rngs, rng)
		g.zips = append(g.zips, rand.NewZipf(rng, 1.2, 1, words-1))
	}
	return nil
}

// Layout returns the table layout (for load-balancing integration).
func (g *GUPS) Layout() gas.Layout {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.lay
}

// issue sends one update from rank.
func (g *GUPS) issue(rank, seq int) {
	g.mu.Lock()
	var word uint64
	if g.dist == KeysZipf {
		word = g.zips[rank].Uint64()
	} else {
		word = g.rngs[rank].Uint64() % (g.lay.Bytes() / 8)
	}
	target := g.lay.At(word * 8)
	g.mu.Unlock()

	act, cont := g.pump.Wire(rank)
	g.w.Locality(rank).SendParcel(&parcel.Parcel{
		Action:  g.update,
		Target:  target,
		Payload: parcel.PutU64(nil, uint64(seq)*0x9E3779B97F4A7C15+uint64(rank)),
		CAction: act,
		CTarget: cont,
	})
}

// onUpdate performs the read-xor-write at the owner.
func (g *GUPS) onUpdate(c *runtime.Ctx) {
	data := c.Local(c.P.Target)
	if data == nil {
		panic("gups: update ran against non-resident target")
	}
	v := parcel.U64(data, 0) ^ parcel.U64(c.P.Payload, 0)
	copy(data, parcel.PutU64(nil, v))
	c.Continue(nil)
}

// Run performs perRank updates from every rank with the given window and
// waits for completion. It returns the total number of updates.
func (g *GUPS) Run(perRank, window int) (int, error) {
	gate, err := g.pump.Run(perRank, window)
	if err != nil {
		return 0, err
	}
	if _, err := g.w.Wait(gate); err != nil {
		return 0, err
	}
	return perRank * g.w.Ranks(), nil
}

// Checksum XORs the whole table — runs must be reproducible for a fixed
// seed and mode-independent (translation must never change semantics).
func (g *GUPS) Checksum() uint64 {
	g.mu.Lock()
	lay := g.lay
	g.mu.Unlock()
	var sum uint64
	for d := uint32(0); d < lay.NBlocks; d++ {
		b := lay.Base.Block() + gas.BlockID(d)
		blk := g.findBlock(b)
		if blk == nil {
			panic(fmt.Sprintf("gups: block %d unreachable for checksum", b))
		}
		for off := 0; off+8 <= len(blk.Data); off += 8 {
			sum ^= parcel.U64(blk.Data, off)
		}
	}
	return sum
}

// findBlock locates a block wherever it currently lives (driver-side
// verification helper).
func (g *GUPS) findBlock(b gas.BlockID) *gas.Block {
	for r := 0; r < g.w.Ranks(); r++ {
		if blk, ok := g.w.Locality(r).Store().Get(b); ok {
			return blk
		}
	}
	return nil
}
