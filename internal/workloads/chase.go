package workloads

import (
	"fmt"
	"math/rand"

	"nmvgas/internal/gas"
	"nmvgas/internal/parcel"
	"nmvgas/internal/runtime"
)

// Chase is the pointer-chasing benchmark: a linked ring of nodes, one per
// block, threaded randomly across the whole machine. A chase parcel hops
// node to node, so end-to-end time divided by hops is the per-hop remote
// reference cost. After consolidating the ring onto one locality with
// migration, the same chase runs at local dispatch cost — the
// "locality can be created" argument for AGAS.
type Chase struct {
	w    *runtime.World
	step parcel.ActionID
	lay  gas.Layout
}

// Node block layout: bytes 0..7 hold the next node's GVA.
const chaseNodeSize = 16

// NewChase registers the chase action. Call before World.Start.
func NewChase(w *runtime.World, name string) *Chase {
	c := &Chase{w: w}
	c.step = w.Register(name+".step", c.onStep)
	return c
}

// Setup builds a ring of n nodes in a random order over a cyclic
// allocation, so consecutive hops almost always change locality.
func (c *Chase) Setup(n uint32, seed int64) error {
	if n < 2 {
		return fmt.Errorf("workloads: chase needs at least 2 nodes")
	}
	lay, err := c.w.AllocCyclic(0, chaseNodeSize, n)
	if err != nil {
		return err
	}
	c.lay = lay
	// Random cyclic permutation: visit order perm[0] → perm[1] → ... →
	// perm[0].
	perm := rand.New(rand.NewSource(seed)).Perm(int(n))
	for i := 0; i < int(n); i++ {
		cur := uint32(perm[i])
		next := uint32(perm[(i+1)%int(n)])
		g := lay.BlockAt(cur)
		blk := c.mustFind(g.Block())
		copy(blk.Data, parcel.PutU64(nil, uint64(lay.BlockAt(next))))
	}
	return nil
}

// Layout returns the node allocation.
func (c *Chase) Layout() gas.Layout { return c.lay }

// onStep hops to the next node, decrementing the remaining count; when it
// reaches zero the continuation fires with the landing node's address.
func (c *Chase) onStep(ctx *runtime.Ctx) {
	data := ctx.Local(ctx.P.Target)
	if data == nil {
		panic("chase: step ran against non-resident node")
	}
	remaining := parcel.U64(ctx.P.Payload, 0)
	if remaining == 0 {
		ctx.Continue(parcel.PutU64(nil, uint64(ctx.P.Target)))
		return
	}
	next := gas.GVA(parcel.U64(data, 0))
	ctx.CallCC(next, c.step, parcel.PutU64(nil, remaining-1), ctx.P.CAction, ctx.P.CTarget)
}

// Run chases `hops` pointers starting from node 0, issued from rank
// `from`, and returns the landing node's address.
func (c *Chase) Run(from int, hops uint64) (gas.GVA, error) {
	fut := c.w.Proc(from).Call(c.lay.BlockAt(0), c.step, parcel.PutU64(nil, hops))
	v, err := c.w.Wait(fut)
	if err != nil {
		return gas.Null, err
	}
	return gas.GVA(parcel.U64(v, 0)), nil
}

// Expected returns the node the chase must land on after `hops` hops —
// computed by walking the stored pointers directly.
func (c *Chase) Expected(hops uint64) gas.GVA {
	g := c.lay.BlockAt(0)
	for i := uint64(0); i < hops; i++ {
		blk := c.mustFind(g.Block())
		g = gas.GVA(parcel.U64(blk.Data, 0))
	}
	return g
}

func (c *Chase) mustFind(b gas.BlockID) *gas.Block {
	for r := 0; r < c.w.Ranks(); r++ {
		if blk, ok := c.w.Locality(r).Store().Get(b); ok {
			return blk
		}
	}
	panic(fmt.Sprintf("chase: block %d unreachable", b))
}
