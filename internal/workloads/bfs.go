package workloads

import (
	"fmt"

	"nmvgas/internal/collective"
	"nmvgas/internal/gas"
	"nmvgas/internal/lco"
	"nmvgas/internal/netsim"
	"nmvgas/internal/parcel"
	"nmvgas/internal/runtime"
)

// BFS is a level-synchronous distributed breadth-first search. Distances
// live in the global address space (4 bytes per vertex, cyclic blocks);
// every edge relaxation is a parcel to the target vertex's current owner.
// Each level runs in two collective phases:
//
//  1. count: every locality counts the out-edges of frontier vertices in
//     blocks it currently owns (a reduction), so the driver knows exactly
//     how many relax parcels the level will send;
//  2. expand: every locality fires those relax parcels, each continuing
//     into a gate sized by the count.
//
// Ownership is read through residency, so migration-based load balancing
// transparently reshapes who expands what — the property the evaluation
// exercises.
type BFS struct {
	w    *runtime.World
	ops  *collective.Ops
	g    *Graph
	lay  gas.Layout
	perB uint32 // vertices per block

	count  parcel.ActionID
	expand parcel.ActionID
	relax  parcel.ActionID

	// RelaxCost and ScanCost model the per-edge memory-bound work of a
	// real BFS (simulated time charged to the executing host); without
	// them a fully serial placement would look artificially cheap.
	RelaxCost netsim.VTime
	ScanCost  netsim.VTime

	// gateG is the current level's relax gate, published to expanders
	// through the broadcast payload.
	edgesRelaxed uint64
	levels       int
}

const infDist = ^uint32(0)

// NewBFS registers BFS actions. Call before World.Start.
func NewBFS(w *runtime.World, ops *collective.Ops, name string) *BFS {
	b := &BFS{w: w, ops: ops, RelaxCost: 400 * netsim.Nanosecond, ScanCost: 60 * netsim.Nanosecond}
	b.count = w.Register(name+".count", b.onCount)
	b.expand = w.Register(name+".expand", b.onExpand)
	b.relax = w.Register(name+".relax", b.onRelax)
	return b
}

// Setup distributes g's distance array over blocks of perBlock vertices
// with the given initial distribution. DistCyclic is the balanced
// default; DistLocal deliberately starts with everything on rank 0 — the
// pathological placement the rebalancing experiment begins from.
func (b *BFS) Setup(g *Graph, perBlock uint32, dist gas.Dist) error {
	if perBlock == 0 || perBlock*4 > gas.MaxBlockSize {
		return fmt.Errorf("workloads: bfs perBlock %d out of range", perBlock)
	}
	nblocks := (g.N + perBlock - 1) / perBlock
	var lay gas.Layout
	var err error
	switch dist {
	case gas.DistLocal:
		lay, err = b.w.AllocLocal(0, perBlock*4, nblocks)
	case gas.DistBlocked:
		lay, err = b.w.AllocBlocked(0, perBlock*4, nblocks)
	default:
		lay, err = b.w.AllocCyclic(0, perBlock*4, nblocks)
	}
	if err != nil {
		return err
	}
	b.g = g
	b.lay = lay
	b.perB = perBlock
	b.reset()
	return nil
}

// reset writes infinite distance into every word (driver-side setup).
func (b *BFS) reset() {
	for d := uint32(0); d < b.lay.NBlocks; d++ {
		blk := b.mustFind(b.lay.Base.Block() + gas.BlockID(d))
		for i := range blk.Data {
			blk.Data[i] = 0xFF
		}
	}
	b.edgesRelaxed = 0
	b.levels = 0
}

// Layout returns the distance-array allocation.
func (b *BFS) Layout() gas.Layout { return b.lay }

// vtxAddr returns the GAS address of v's distance word.
func (b *BFS) vtxAddr(v uint32) gas.GVA { return b.lay.At(uint64(v) * 4) }

// scanLocal walks the vertices of blocks resident on ctx's locality whose
// distance equals level.
func (b *BFS) scanLocal(ctx *runtime.Ctx, level uint32, fn func(v uint32)) {
	for d := uint32(0); d < b.lay.NBlocks; d++ {
		data := ctx.Local(b.lay.BlockAt(d))
		if data == nil {
			continue
		}
		lo := d * b.perB
		hi := lo + b.perB
		if hi > b.g.N {
			hi = b.g.N
		}
		for v := lo; v < hi; v++ {
			if parcel.U32(data, int(v-lo)*4) == level {
				fn(v)
			}
		}
	}
}

// onCount sums out-degrees of the local frontier (reduction leaf).
func (b *BFS) onCount(c *runtime.Ctx) {
	level := parcel.U32(c.P.Payload, 0)
	var edges int64
	b.scanLocal(c, level, func(v uint32) {
		edges += int64(len(b.g.Out(v)))
	})
	c.Continue(lco.EncodeI64(edges))
}

// onExpand fires a relax parcel per frontier edge, each continuing into
// the level gate carried in the payload.
func (b *BFS) onExpand(c *runtime.Ctx) {
	level := parcel.U32(c.P.Payload, 0)
	gate := gas.GVA(parcel.U64(c.P.Payload, 4))
	b.scanLocal(c, level, func(v uint32) {
		out := b.g.Out(v)
		c.Charge(netsim.VTime(len(out)) * b.ScanCost)
		for _, u := range out {
			c.CallCC(b.vtxAddr(u), b.relax, parcel.PutU32(nil, level+1), runtime.ALCOSet, gate)
		}
	})
	c.Continue(nil)
}

// onRelax claims a vertex for the next level if it is unvisited.
func (b *BFS) onRelax(c *runtime.Ctx) {
	data := c.Local(c.P.Target)
	if data == nil {
		panic("bfs: relax ran against non-resident block")
	}
	c.Charge(b.RelaxCost)
	nd := parcel.U32(c.P.Payload, 0)
	if parcel.U32(data, 0) == infDist {
		copy(data, parcel.PutU32(nil, nd))
	}
	c.Continue(nil)
}

// Run performs a BFS from root and returns (edges relaxed, levels).
func (b *BFS) Run(root uint32) (uint64, int, error) {
	b.reset()
	// Seed the root.
	if _, err := b.w.Wait(b.w.Proc(0).Put(b.vtxAddr(root), parcel.PutU32(nil, 0))); err != nil {
		return 0, 0, err
	}
	for level := uint32(0); ; level++ {
		cnt := b.ops.Reduce(0, b.count, parcel.PutU32(nil, level), lco.SumI64)
		v, err := b.w.Wait(cnt)
		if err != nil {
			return 0, 0, err
		}
		total := lco.DecodeI64(v)
		if total == 0 {
			return b.edgesRelaxed, b.levels, nil
		}
		gate := b.w.NewAndGate(0, int(total))
		payload := parcel.PutU32(nil, level)
		payload = parcel.PutU64(payload, uint64(gate.G))
		bc := b.ops.Broadcast(0, b.expand, payload)
		if _, err := b.w.Wait(bc); err != nil {
			return 0, 0, err
		}
		if _, err := b.w.Wait(gate); err != nil {
			return 0, 0, err
		}
		b.edgesRelaxed += uint64(total)
		b.levels++
	}
}

// Dist reads v's computed distance (driver-side verification).
func (b *BFS) Dist(v uint32) uint32 {
	blk := b.mustFind(b.vtxAddr(v).Block())
	return parcel.U32(blk.Data, int(b.vtxAddr(v).Offset()))
}

func (b *BFS) mustFind(blockID gas.BlockID) *gas.Block {
	for r := 0; r < b.w.Ranks(); r++ {
		if blk, ok := b.w.Locality(r).Store().Get(blockID); ok {
			return blk
		}
	}
	panic(fmt.Sprintf("bfs: block %d unreachable", blockID))
}
