package workloads

import (
	"fmt"
	"math/rand"
	"sync"

	"nmvgas/internal/gas"
	"nmvgas/internal/parcel"
	"nmvgas/internal/runtime"
)

// Histogram bins skewed keys into a distributed array of uint64 counters.
// Unlike GUPS it is pure increment (commutative), and its Zipf key stream
// concentrates traffic on a few bins — the canonical hot-block scenario
// migration-based placement exploits.
type Histogram struct {
	w    *runtime.World
	add  parcel.ActionID
	pump *Pump

	mu   sync.Mutex
	lay  gas.Layout
	bins uint64
	zips []*rand.Zipf
}

// NewHistogram registers the histogram actions. Call before World.Start.
func NewHistogram(w *runtime.World, name string) *Histogram {
	h := &Histogram{w: w}
	h.add = w.Register(name+".add", h.onAdd)
	h.pump = NewPump(w, name+".pump")
	h.pump.Issue = h.issue
	return h
}

// Setup allocates bins (8 bytes each) over cyclic blocks of binsPerBlock,
// and seeds per-rank Zipf key streams with skew s.
func (h *Histogram) Setup(binsPerBlock, nblocks uint32, skew float64, seed int64) error {
	if skew <= 1 {
		return fmt.Errorf("workloads: zipf skew must be > 1, got %v", skew)
	}
	lay, err := h.w.AllocCyclic(0, binsPerBlock*8, nblocks)
	if err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.lay = lay
	h.bins = uint64(binsPerBlock) * uint64(nblocks)
	h.zips = h.zips[:0]
	for r := 0; r < h.w.Ranks(); r++ {
		rng := rand.New(rand.NewSource(seed + int64(r)*7_919))
		h.zips = append(h.zips, rand.NewZipf(rng, skew, 1, h.bins-1))
	}
	return nil
}

// Layout returns the bin allocation.
func (h *Histogram) Layout() gas.Layout {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lay
}

func (h *Histogram) issue(rank, seq int) {
	h.mu.Lock()
	bin := h.zips[rank].Uint64()
	target := h.lay.At(bin * 8)
	h.mu.Unlock()
	act, cont := h.pump.Wire(rank)
	h.w.Locality(rank).SendParcel(&parcel.Parcel{
		Action:  h.add,
		Target:  target,
		CAction: act,
		CTarget: cont,
	})
}

func (h *Histogram) onAdd(c *runtime.Ctx) {
	data := c.Local(c.P.Target)
	if data == nil {
		panic("histogram: add ran against non-resident bin")
	}
	copy(data, parcel.PutU64(nil, parcel.U64(data, 0)+1))
	c.Continue(nil)
}

// Run performs perRank increments from every rank.
func (h *Histogram) Run(perRank, window int) (int, error) {
	gate, err := h.pump.Run(perRank, window)
	if err != nil {
		return 0, err
	}
	if _, err := h.w.Wait(gate); err != nil {
		return 0, err
	}
	return perRank * h.w.Ranks(), nil
}

// Total sums all bins — must equal the number of increments issued.
func (h *Histogram) Total() uint64 {
	h.mu.Lock()
	lay := h.lay
	h.mu.Unlock()
	var sum uint64
	for d := uint32(0); d < lay.NBlocks; d++ {
		blk := h.mustFind(lay.Base.Block() + gas.BlockID(d))
		for off := 0; off+8 <= len(blk.Data); off += 8 {
			sum += parcel.U64(blk.Data, off)
		}
	}
	return sum
}

func (h *Histogram) mustFind(b gas.BlockID) *gas.Block {
	for r := 0; r < h.w.Ranks(); r++ {
		if blk, ok := h.w.Locality(r).Store().Get(b); ok {
			return blk
		}
	}
	panic(fmt.Sprintf("histogram: block %d unreachable", b))
}
