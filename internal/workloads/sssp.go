package workloads

import (
	"fmt"

	"nmvgas/internal/gas"
	"nmvgas/internal/netsim"
	"nmvgas/internal/parcel"
	"nmvgas/internal/runtime"
)

// SSSP is chaotic-relaxation single-source shortest paths — the
// asynchronous, unordered algorithm this research group's runtime papers
// evaluate (no levels, no barriers; every improvement immediately fans
// out). Termination uses a Dijkstra–Scholten-style ack tree built from
// LCOs: each relax parcel acknowledges its sender only after the whole
// subtree of work it caused has acknowledged, so the root future fires
// exactly when the computation has quiesced. This works identically on
// the discrete-event and goroutine engines.
type SSSP struct {
	w    *runtime.World
	g    *Graph
	lay  gas.Layout
	perB uint32

	relax parcel.ActionID

	// RelaxCost models per-edge work, as in BFS.
	RelaxCost netsim.VTime
}

// NewSSSP registers the relax action. Call before World.Start.
func NewSSSP(w *runtime.World, name string) *SSSP {
	s := &SSSP{w: w, RelaxCost: 300 * netsim.Nanosecond}
	s.relax = w.Register(name+".relax", s.onRelax)
	return s
}

// Setup distributes the distance array (4 bytes per vertex).
func (s *SSSP) Setup(g *Graph, perBlock uint32, dist gas.Dist) error {
	if perBlock == 0 || perBlock*4 > gas.MaxBlockSize {
		return fmt.Errorf("workloads: sssp perBlock %d out of range", perBlock)
	}
	if len(g.Weights) != len(g.Targets) {
		return fmt.Errorf("workloads: sssp needs a weighted graph")
	}
	nblocks := (g.N + perBlock - 1) / perBlock
	var lay gas.Layout
	var err error
	switch dist {
	case gas.DistLocal:
		lay, err = s.w.AllocLocal(0, perBlock*4, nblocks)
	case gas.DistBlocked:
		lay, err = s.w.AllocBlocked(0, perBlock*4, nblocks)
	default:
		lay, err = s.w.AllocCyclic(0, perBlock*4, nblocks)
	}
	if err != nil {
		return err
	}
	s.g = g
	s.lay = lay
	s.perB = perBlock
	s.reset()
	return nil
}

func (s *SSSP) reset() {
	for d := uint32(0); d < s.lay.NBlocks; d++ {
		blk := s.mustFind(s.lay.Base.Block() + gas.BlockID(d))
		for i := range blk.Data {
			blk.Data[i] = 0xFF
		}
	}
}

// Layout returns the distance allocation.
func (s *SSSP) Layout() gas.Layout { return s.lay }

func (s *SSSP) vtxAddr(v uint32) gas.GVA { return s.lay.At(uint64(v) * 4) }

// relax payload: vertex u32, proposed distance u32. The parcel's
// continuation is its ack target.
func (s *SSSP) onRelax(c *runtime.Ctx) {
	v := parcel.U32(c.P.Payload, 0)
	nd := parcel.U32(c.P.Payload, 4)
	data := c.Local(c.P.Target)
	if data == nil {
		panic("sssp: relax ran against non-resident block")
	}
	c.Charge(s.RelaxCost)
	// data is already positioned at v's word (Local applies the GVA
	// offset).
	if nd >= parcel.U32(data, 0) {
		// No improvement: this subtree is empty — ack immediately.
		c.Continue(nil)
		return
	}
	copy(data, parcel.PutU32(nil, nd))

	outs, ws := s.g.OutW(v)
	if len(outs) == 0 {
		c.Continue(nil)
		return
	}
	// Dijkstra–Scholten: ack our sender only when every child subtree
	// has acked into this local gate.
	w := c.World()
	gate := w.NewAndGate(c.Rank(), len(outs))
	ackA, ackT := c.P.CAction, c.P.CTarget
	l := c.World().Locality(c.Rank())
	gate.OnFire(func([]byte) {
		w.FreeLCO(gate)
		if ackT.IsNull() {
			return
		}
		act := ackA
		if act == parcel.NilAction {
			act = runtime.ALCOSet
		}
		l.SendParcel(&parcel.Parcel{Action: act, Target: ackT})
	})
	for e, u := range outs {
		payload := parcel.PutU32(nil, u)
		payload = parcel.PutU32(payload, nd+ws[e])
		c.CallCC(s.vtxAddr(u), s.relax, payload, runtime.ALCOSet, gate.G)
	}
}

// Run computes shortest paths from root; the returned count is the number
// of reachable vertices.
func (s *SSSP) Run(root uint32) (int, error) {
	s.reset()
	done := s.w.NewFuture(0)
	payload := parcel.PutU32(nil, root)
	payload = parcel.PutU32(payload, 0)
	s.w.Proc(0).Run(func() {
		s.w.Locality(0).SendParcel(&parcel.Parcel{
			Action: s.relax, Target: s.vtxAddr(root), Payload: payload,
			CAction: runtime.ALCOSet, CTarget: done.G,
		})
	})
	if _, err := s.w.Wait(done); err != nil {
		return 0, err
	}
	reached := 0
	for v := uint32(0); v < s.g.N; v++ {
		if s.Dist(v) != ^uint32(0) {
			reached++
		}
	}
	return reached, nil
}

// Dist reads v's computed distance (driver-side verification).
func (s *SSSP) Dist(v uint32) uint32 {
	g := s.vtxAddr(v)
	blk := s.mustFind(g.Block())
	return parcel.U32(blk.Data, int(g.Offset()))
}

func (s *SSSP) mustFind(b gas.BlockID) *gas.Block {
	for r := 0; r < s.w.Ranks(); r++ {
		if blk, ok := s.w.Locality(r).Store().Get(b); ok {
			return blk
		}
	}
	panic(fmt.Sprintf("sssp: block %d unreachable", b))
}
