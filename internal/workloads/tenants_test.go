package workloads

import (
	"testing"

	"nmvgas/internal/gas"
	"nmvgas/internal/loadbal"
	"nmvgas/internal/runtime"
)

func TestTenantsRunsInEveryMode(t *testing.T) {
	for _, mode := range testModes {
		w := newW(t, mode, 4)
		tn := NewTenants(w)
		w.Start()
		if err := tn.Setup(256, 8, 4, 64, 1.6, 10, 11); err != nil {
			t.Fatal(err)
		}
		n, err := tn.Run(100, 8)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if n != 400 {
			t.Fatalf("%s: %d ops, want 400", mode, n)
		}
		if tn.Reads()+tn.Writes() != int64(n) {
			t.Fatalf("%s: reads %d + writes %d != %d", mode, tn.Reads(), tn.Writes(), n)
		}
		if tn.Writes() == 0 {
			t.Fatalf("%s: write mix never fired", mode)
		}
	}
}

func TestTenantsRejectsBadConfig(t *testing.T) {
	w := newW(t, runtime.PGAS, 2)
	tn := NewTenants(w)
	w.Start()
	if err := tn.Setup(256, 8, 0, 64, 0.9, 10, 1); err == nil {
		t.Fatal("skew <= 1 accepted")
	}
	if err := tn.Setup(100, 8, 0, 64, 1.5, 10, 1); err == nil {
		t.Fatal("unaligned bsize accepted")
	}
	if err := tn.Setup(256, 1, 0, 64, 1.5, 10, 1); err == nil {
		t.Fatal("single-block tenant accepted")
	}
	if _, err := tn.Run(10, 4); err == nil {
		t.Fatal("Run before Setup accepted")
	}
}

// TestTenantsHeatTracksShiftingHotspot: the heat layer must see each
// tenant's hotspot where the workload says it is — before and after a
// Shift.
func TestTenantsHeatTracksShiftingHotspot(t *testing.T) {
	w := newW(t, runtime.AGASNM, 4)
	tn := NewTenants(w)
	w.Start()
	if err := tn.Setup(256, 8, 0, 64, 1.8, 0, 3); err != nil {
		t.Fatal(err)
	}
	hottestPerTenant := func() map[int]gas.BlockID {
		heat := loadbal.HeatMap(w, tn.Layout())
		base := tn.Layout().Base.Block()
		out := map[int]gas.BlockID{}
		best := map[int]uint64{}
		for b, h := range heat {
			tenant := int(uint32(b-base) / 8)
			if h > best[tenant] {
				best[tenant] = h
				out[tenant] = b - base
			}
		}
		return out
	}
	if _, err := tn.Run(300, 8); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		if got, want := hottestPerTenant()[r], gas.BlockID(tn.HotBlock(r)); got != want {
			t.Fatalf("tenant %d: hottest block %d, workload says %d", r, got, want)
		}
	}
	before := tn.HotBlock(1)
	tn.Shift()
	if tn.HotBlock(1) == before {
		t.Fatal("Shift did not move tenant 1's hotspot")
	}
	w.HeatEpoch() // fresh window for the shifted regime
	if _, err := tn.Run(300, 8); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		if got, want := hottestPerTenant()[r], gas.BlockID(tn.HotBlock(r)); got != want {
			t.Fatalf("tenant %d post-shift: hottest block %d, workload says %d", r, got, want)
		}
	}
}

// TestTenantsPolicyLocalizesTraffic: the end-to-end loop in miniature —
// epochs of traffic with Policy.Step between them must migrate each
// tenant's hot block to the tenant's own rank.
func TestTenantsPolicyLocalizesTraffic(t *testing.T) {
	w := newW(t, runtime.AGASNM, 4)
	tn := NewTenants(w)
	w.Start()
	if err := tn.Setup(256, 8, 0, 64, 1.8, 0, 3); err != nil {
		t.Fatal(err)
	}
	p, err := loadbal.NewPolicy(w, loadbal.PolicyConfig{Layout: tn.Layout(), MoveBudget: 8})
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 4; epoch++ {
		if _, err := tn.Run(300, 8); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Step(); err != nil {
			t.Fatal(err)
		}
	}
	base := tn.Layout().Base.Block()
	for r := 0; r < 4; r++ {
		hot := base + gas.BlockID(tn.HotBlock(r))
		if _, ok := w.Locality(r).Store().Get(hot); !ok {
			t.Fatalf("tenant %d's hot block %d not migrated home (policy stats %+v)", r, hot, p.Stats())
		}
	}
	if p.Stats().Moves == 0 {
		t.Fatal("policy made no moves")
	}
}
