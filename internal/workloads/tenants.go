package workloads

import (
	"fmt"
	"math/rand"
	"sync"

	"nmvgas/internal/gas"
	"nmvgas/internal/parcel"
	"nmvgas/internal/runtime"
)

// Tenants is the multi-tenant key-value serving workload behind the
// rebalancing experiment (F19): one tenant per rank, each firing Zipfian
// one-sided traffic at its own slice of a shared cyclic table. The
// cyclic layout scatters every tenant's blocks across all ranks, so at
// start each tenant's requests are almost entirely remote — the shape a
// heat-driven policy should fix by migrating each tenant's hot blocks to
// the rank that hammers them. Shift() rotates every tenant's Zipf
// hotspot mid-run, invalidating whatever placement the policy has
// converged on and forcing it to re-balance.
//
// An optional shared table region (read by every tenant, rarely written)
// gives the adaptive-replication path something to chew on: its hot
// blocks are read-dominated with a full-width audience, the profile
// where replica sets beat migration.
type Tenants struct {
	w *runtime.World

	mu         sync.Mutex
	lay        gas.Layout
	perTenant  uint32 // blocks per tenant
	shared     uint32 // shared read-mostly blocks at the end of the table
	readBytes  int
	writeEvery int // every n-th tenant op is a write (0 = pure reads)
	stride     uint32
	phase      uint32
	zips       []*rand.Zipf // per-rank tenant-range stream
	szips      []*rand.Zipf // per-rank shared-range stream
	rngs       []*rand.Rand
	st         []readHotRank
	gate       *runtime.LCORef
	reads      int64
	writes     int64
}

// sharedEvery routes every 4th operation to the shared region (when one
// is configured); sharedWriteEvery makes every 50th shared access a
// write, enough to keep replica coherence honest without drowning the
// read signal.
const (
	tenantsSharedEvery      = 4
	tenantsSharedWriteEvery = 50
)

// NewTenants builds the workload; it registers no actions, so it may be
// created before or after World.Start.
func NewTenants(w *runtime.World) *Tenants {
	return &Tenants{w: w, st: make([]readHotRank, w.Ranks())}
}

// Setup allocates ranks×perTenant tenant blocks plus `shared` shared
// blocks, cyclic over the ranks, and seeds the per-rank Zipf streams
// with skew s (> 1; higher = sharper hotspots). Every tenant's stream
// concentrates on a few hot blocks of its own range, rotated by Shift.
func (tn *Tenants) Setup(bsize, perTenant, shared uint32, readBytes int, skew float64, writeEvery int, seed int64) error {
	if skew <= 1 {
		return fmt.Errorf("workloads: zipf skew must be > 1, got %v", skew)
	}
	if perTenant < 2 {
		return fmt.Errorf("workloads: tenants needs at least 2 blocks per tenant, got %d", perTenant)
	}
	if bsize%8 != 0 {
		return fmt.Errorf("workloads: tenants bsize %d not 8-byte aligned", bsize)
	}
	if readBytes < 8 || readBytes%8 != 0 || uint32(readBytes) > bsize {
		return fmt.Errorf("workloads: tenants read size %d (need 8-aligned, 8..bsize)", readBytes)
	}
	ranks := uint32(tn.w.Ranks())
	lay, err := tn.w.AllocCyclic(0, bsize, ranks*perTenant+shared)
	if err != nil {
		return err
	}
	tn.mu.Lock()
	defer tn.mu.Unlock()
	tn.lay = lay
	tn.perTenant = perTenant
	tn.shared = shared
	tn.readBytes = readBytes
	tn.writeEvery = writeEvery
	tn.stride = perTenant/3 + 1
	tn.phase = 0
	tn.zips = tn.zips[:0]
	tn.szips = tn.szips[:0]
	tn.rngs = tn.rngs[:0]
	for r := uint32(0); r < ranks; r++ {
		rng := rand.New(rand.NewSource(seed + int64(r)*7_919))
		tn.rngs = append(tn.rngs, rng)
		tn.zips = append(tn.zips, rand.NewZipf(rng, skew, 1, uint64(perTenant)-1))
		if shared > 0 {
			tn.szips = append(tn.szips, rand.NewZipf(rng, skew, 1, uint64(shared)-1))
		}
	}
	return nil
}

// Layout returns the whole table allocation (tenant slices + shared
// region) — the layout the policy engine manages.
func (tn *Tenants) Layout() gas.Layout {
	tn.mu.Lock()
	defer tn.mu.Unlock()
	return tn.lay
}

// Shift rotates every tenant's hotspot to a different part of its range:
// the mid-run regime change the policy must re-converge after.
func (tn *Tenants) Shift() {
	tn.mu.Lock()
	defer tn.mu.Unlock()
	tn.phase++
}

// Phase reports how many shifts have been applied.
func (tn *Tenants) Phase() int {
	tn.mu.Lock()
	defer tn.mu.Unlock()
	return int(tn.phase)
}

// HotBlock returns the table index of tenant r's current hottest block
// (the Zipf mode after phase rotation) — used by tests to check the
// policy moved the right data.
func (tn *Tenants) HotBlock(r int) uint32 {
	tn.mu.Lock()
	defer tn.mu.Unlock()
	return uint32(r)*tn.perTenant + (tn.phase*tn.stride)%tn.perTenant
}

// Reads and Writes report the last Run's operation mix.
func (tn *Tenants) Reads() int64  { tn.mu.Lock(); defer tn.mu.Unlock(); return tn.reads }
func (tn *Tenants) Writes() int64 { tn.mu.Lock(); defer tn.mu.Unlock(); return tn.writes }

// issue fires rank's seq-th operation; its completion re-arms the window.
func (tn *Tenants) issue(rank, seq int) {
	tn.mu.Lock()
	var blk uint32
	write := false
	if tn.shared > 0 && seq%tenantsSharedEvery == 0 {
		// Shared-region access: Zipf-hot, read-mostly, same stream for
		// every tenant — the replication-shaped component.
		blk = uint32(tn.w.Ranks())*tn.perTenant + uint32(tn.szips[rank].Uint64())
		write = seq%(tenantsSharedEvery*tenantsSharedWriteEvery) == 0 && seq > 0
	} else {
		// Tenant-range access: this rank's own slice, hotspot rotated by
		// phase·stride so Shift moves it without touching the Zipf draw.
		z := uint32(tn.zips[rank].Uint64())
		blk = uint32(rank)*tn.perTenant + (z+tn.phase*tn.stride)%tn.perTenant
		write = tn.writeEvery > 0 && (seq+1)%tn.writeEvery == 0
	}
	span := 8
	if !write {
		span = tn.readBytes
	}
	off := uint64(tn.rngs[rank].Intn((int(tn.lay.BSize)-span)/8+1)) * 8
	if write {
		tn.writes++
	} else {
		tn.reads++
	}
	target := tn.lay.BlockAt(blk).WithOffset(uint32(off))
	size := tn.readBytes
	tn.mu.Unlock()
	l := tn.w.Locality(rank)
	if write {
		l.PutAsync(target, parcel.PutU64(nil, uint64(seq)<<16|uint64(rank)), func() { tn.onDone(rank) })
		return
	}
	l.GetAsync(target, uint32(size), func([]byte) { tn.onDone(rank) })
}

// onDone runs on the issuing locality at each completion.
func (tn *Tenants) onDone(rank int) {
	tn.mu.Lock()
	st := &tn.st[rank]
	st.completed++
	if st.issued < st.target {
		seq := st.issued
		st.issued++
		tn.mu.Unlock()
		tn.issue(rank, seq)
		return
	}
	done := st.completed == st.target
	gate := tn.gate
	tn.mu.Unlock()
	if done {
		tn.w.Locality(rank).SendParcel(&parcel.Parcel{Action: runtime.ALCOSet, Target: gate.G})
	}
}

// Run performs perRank operations from every rank, keeping up to window
// outstanding per rank, and waits for completion. It returns the total
// operation count. Call it repeatedly for epoch-shaped load, with
// Policy.Step between calls.
func (tn *Tenants) Run(perRank, window int) (int, error) {
	if perRank < 1 || window < 1 {
		return 0, fmt.Errorf("workloads: tenants needs perRank>=1 and window>=1, got %d/%d", perRank, window)
	}
	if window > perRank {
		window = perRank
	}
	tn.mu.Lock()
	if tn.lay.NBlocks == 0 {
		tn.mu.Unlock()
		return 0, fmt.Errorf("workloads: tenants Run before Setup")
	}
	tn.gate = tn.w.NewAndGate(0, tn.w.Ranks())
	tn.reads, tn.writes = 0, 0
	for r := range tn.st {
		tn.st[r] = readHotRank{target: perRank}
	}
	gate := tn.gate
	tn.mu.Unlock()
	for r := 0; r < tn.w.Ranks(); r++ {
		r := r
		prime := window
		tn.w.Proc(r).Run(func() {
			tn.mu.Lock()
			tn.st[r].issued = prime
			tn.mu.Unlock()
			for i := 0; i < prime; i++ {
				tn.issue(r, i)
			}
		})
	}
	if _, err := tn.w.Wait(gate); err != nil {
		return 0, err
	}
	return perRank * tn.w.Ranks(), nil
}
