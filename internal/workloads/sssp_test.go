package workloads

import (
	"testing"

	"nmvgas/internal/gas"
	"nmvgas/internal/loadbal"
	"nmvgas/internal/runtime"
)

func TestSeqSSSPHandChecked(t *testing.T) {
	// 0 -1-> 1 -1-> 2, 0 -5-> 2: shortest to 2 is 2 via 1.
	g := &Graph{
		N:       3,
		Offsets: []uint32{0, 2, 3, 3},
		Targets: []uint32{1, 2, 2},
		Weights: []uint32{1, 5, 1},
	}
	dist := g.SeqSSSP(0)
	if dist[0] != 0 || dist[1] != 1 || dist[2] != 2 {
		t.Fatalf("dist = %v", dist)
	}
}

func TestSSSPMatchesDijkstra(t *testing.T) {
	for _, mode := range testModes {
		for _, eng := range []runtime.EngineKind{runtime.EngineDES, runtime.EngineGo} {
			w, err := runtime.NewWorld(runtime.Config{Ranks: 4, Mode: mode, Engine: eng})
			if err != nil {
				t.Fatal(err)
			}
			s := NewSSSP(w, "sssp")
			w.Start()
			g := GenGraph(150, 4, 21)
			if err := s.Setup(g, 16, gas.DistCyclic); err != nil {
				t.Fatal(err)
			}
			reached, err := s.Run(0)
			if err != nil {
				t.Fatal(err)
			}
			if reached == 0 {
				t.Fatal("nothing reached")
			}
			ref := g.SeqSSSP(0)
			for v := uint32(0); v < g.N; v++ {
				if got := s.Dist(v); got != ref[v] {
					t.Fatalf("%s/%s: dist[%d] = %d, want %d", mode, eng, v, got, ref[v])
				}
			}
			w.Stop()
		}
	}
}

func TestSSSPRepeatableAndRerunnable(t *testing.T) {
	w, err := runtime.NewWorld(runtime.Config{Ranks: 3, Mode: runtime.AGASNM, Engine: runtime.EngineDES})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	s := NewSSSP(w, "sssp")
	w.Start()
	g := GenGraph(100, 4, 5)
	if err := s.Setup(g, 16, gas.DistCyclic); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	first := make([]uint32, g.N)
	for v := uint32(0); v < g.N; v++ {
		first[v] = s.Dist(v)
	}
	// Run again from a different root, then from 0 again: reset must be
	// complete.
	if _, err := s.Run(7); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	for v := uint32(0); v < g.N; v++ {
		if s.Dist(v) != first[v] {
			t.Fatalf("rerun diverged at %d", v)
		}
	}
}

func TestSSSPAfterConsolidationStillCorrect(t *testing.T) {
	w, err := runtime.NewWorld(runtime.Config{Ranks: 4, Mode: runtime.AGASNM, Engine: runtime.EngineDES})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	s := NewSSSP(w, "sssp")
	w.Start()
	g := GenGraph(120, 4, 13)
	if err := s.Setup(g, 16, gas.DistCyclic); err != nil {
		t.Fatal(err)
	}
	if err := loadbal.Consolidate(w, 0, s.Layout(), 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	ref := g.SeqSSSP(0)
	for v := uint32(0); v < g.N; v++ {
		if s.Dist(v) != ref[v] {
			t.Fatalf("dist[%d] wrong after consolidation", v)
		}
	}
}

func TestSSSPRejectsUnweightedGraph(t *testing.T) {
	w, err := runtime.NewWorld(runtime.Config{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	s := NewSSSP(w, "sssp")
	w.Start()
	g := &Graph{N: 2, Offsets: []uint32{0, 1, 1}, Targets: []uint32{1}}
	if err := s.Setup(g, 4, gas.DistCyclic); err == nil {
		t.Fatal("unweighted graph accepted")
	}
}
