package agas

import (
	"sync"

	"nmvgas/internal/gas"
)

// Tombstones records, at a block's *previous* owner, where the block went.
// In software-managed AGAS the old owner's host uses this to forward
// stale traffic and to answer one-sided faults. (In network-managed AGAS
// the equivalent state lives in the old owner's NIC instead.)
type Tombstones struct {
	mu sync.RWMutex
	m  map[gas.BlockID]int
}

// NewTombstones returns an empty table.
func NewTombstones() *Tombstones {
	return &Tombstones{m: make(map[gas.BlockID]int)}
}

// Put records that block now lives at owner.
func (t *Tombstones) Put(block gas.BlockID, owner int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m[block] = owner
}

// Get returns the forwarding target for block, if known.
func (t *Tombstones) Get(block gas.BlockID) (int, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	o, ok := t.m[block]
	return o, ok
}

// Drop removes a tombstone (the block came back, or was freed).
func (t *Tombstones) Drop(block gas.BlockID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.m, block)
}

// Clear drops every tombstone (rebirth of the owning locality — the
// previous incarnation's forwarding chains must not mislead the new
// one).
func (t *Tombstones) Clear() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m = make(map[gas.BlockID]int)
}

// Len returns the tombstone count.
func (t *Tombstones) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.m)
}
