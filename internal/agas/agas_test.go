package agas

import (
	"sync"
	"testing"
	"testing/quick"

	"nmvgas/internal/gas"
)

func TestDirectoryDefaultsToHome(t *testing.T) {
	d := NewDirectory()
	if _, ok := d.Owner(5); ok {
		t.Fatal("empty directory claims an entry")
	}
	if got := d.Resolve(5, 3); got != 3 {
		t.Fatalf("Resolve = %d, want home 3", got)
	}
}

func TestDirectorySetResolveDrop(t *testing.T) {
	d := NewDirectory()
	d.Set(5, 7, 3)
	if got := d.Resolve(5, 3); got != 7 {
		t.Fatalf("Resolve after Set = %d", got)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}
	// Returning home removes the entry.
	d.Set(5, 3, 3)
	if d.Len() != 0 {
		t.Fatal("home-owner entry retained")
	}
	d.Set(6, 1, 0)
	d.Drop(6)
	if d.Len() != 0 {
		t.Fatal("Drop left an entry")
	}
}

func TestDirectoryConcurrent(t *testing.T) {
	d := NewDirectory()
	var wg sync.WaitGroup
	for w := 1; w <= 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				d.Set(gas.BlockID(i), w, 0)
				d.Resolve(gas.BlockID(i), 0)
			}
		}(w)
	}
	wg.Wait()
	if d.Len() != 200 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestDirectoryResolveMatchesSetProperty(t *testing.T) {
	d := NewDirectory()
	f := func(block uint32, owner, home uint8) bool {
		b := gas.BlockID(block)
		d.Set(b, int(owner), int(home))
		got := d.Resolve(b, int(home))
		return got == int(owner)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSWCacheLearnAndLookup(t *testing.T) {
	c := NewSWCache(0, CorrectionUpdate)
	if _, ok := c.Lookup(1); ok {
		t.Fatal("empty cache hit")
	}
	c.Learn(1, 4)
	if o, ok := c.Lookup(1); !ok || o != 4 {
		t.Fatalf("Lookup = %d,%v", o, ok)
	}
	h, m, _, up, _ := c.Stats()
	if h != 1 || m != 1 {
		t.Fatalf("stats h=%d m=%d", h, m)
	}
	if up != 1 {
		t.Fatalf("updates = %d (Learn must surface as a table update)", up)
	}
	if c.HitRate() != 0.5 {
		t.Fatalf("hit rate %v", c.HitRate())
	}
}

func TestSWCacheCorrectionUpdate(t *testing.T) {
	c := NewSWCache(0, CorrectionUpdate)
	c.Learn(1, 4)
	c.Correct(1, 6)
	if o, ok := c.Lookup(1); !ok || o != 6 {
		t.Fatalf("after correction Lookup = %d,%v", o, ok)
	}
	_, _, _, _, corr := c.Stats()
	if corr != 1 {
		t.Fatalf("corrections = %d", corr)
	}
}

func TestSWCacheCorrectionInvalidate(t *testing.T) {
	c := NewSWCache(0, CorrectionInvalidate)
	c.Learn(1, 4)
	c.Correct(1, 6)
	if _, ok := c.Lookup(1); ok {
		t.Fatal("invalidate policy retained the entry")
	}
}

func TestSWCacheBoundedCapacity(t *testing.T) {
	c := NewSWCache(4, CorrectionUpdate)
	for i := 0; i < 100; i++ {
		c.Learn(gas.BlockID(i), i%3)
	}
	if c.Len() > 4 {
		t.Fatalf("cache grew to %d entries", c.Len())
	}
}

func TestSWCacheConcurrent(t *testing.T) {
	c := NewSWCache(64, CorrectionUpdate)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Learn(gas.BlockID(i%128), w)
				c.Lookup(gas.BlockID(i % 128))
				if i%17 == 0 {
					c.Correct(gas.BlockID(i%128), w)
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestTombstones(t *testing.T) {
	ts := NewTombstones()
	if _, ok := ts.Get(1); ok {
		t.Fatal("empty tombstones hit")
	}
	ts.Put(1, 5)
	if o, ok := ts.Get(1); !ok || o != 5 {
		t.Fatalf("Get = %d,%v", o, ok)
	}
	ts.Put(1, 6) // re-migration overwrites
	if o, _ := ts.Get(1); o != 6 {
		t.Fatalf("overwrite failed, got %d", o)
	}
	if ts.Len() != 1 {
		t.Fatalf("Len = %d", ts.Len())
	}
	ts.Drop(1)
	if _, ok := ts.Get(1); ok {
		t.Fatal("entry survived Drop")
	}
}

func TestTombstonesConcurrent(t *testing.T) {
	ts := NewTombstones()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				ts.Put(gas.BlockID(i), w)
				ts.Get(gas.BlockID(i))
			}
		}(w)
	}
	wg.Wait()
	if ts.Len() != 300 {
		t.Fatalf("Len = %d", ts.Len())
	}
}
