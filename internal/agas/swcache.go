package agas

import (
	"sync"

	"nmvgas/internal/gas"
	"nmvgas/internal/netsim"
)

// CorrectionPolicy selects what a software cache does when the network
// tells it an entry was stale.
type CorrectionPolicy uint8

const (
	// CorrectionUpdate installs the corrected owner (default: one wrong
	// send per migration per source).
	CorrectionUpdate CorrectionPolicy = iota
	// CorrectionInvalidate merely drops the stale entry, so the next
	// send defaults back to the home and relearns. Exists for the churn
	// ablation: it trades table accuracy for update traffic.
	CorrectionInvalidate
)

// SWCache is the per-locality software translation cache of the
// software-managed AGAS. It wraps the same bounded-LRU table the NIC
// model uses — the difference the experiments measure is *where* the
// probe happens (host CPU at SWLookup cost vs NIC at NICLookup cost) and
// who repairs staleness, not the replacement policy.
type SWCache struct {
	mu     sync.Mutex
	table  *netsim.TransTable
	policy CorrectionPolicy

	corrections uint64
}

// NewSWCache returns a cache bounded to capacity entries (0 = unbounded).
func NewSWCache(capacity int, policy CorrectionPolicy) *SWCache {
	return &SWCache{table: netsim.NewTransTable(capacity), policy: policy}
}

// Lookup probes the cache.
func (c *SWCache) Lookup(block gas.BlockID) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.table.Lookup(block)
}

// Learn installs a translation observed from lookup replies or owner
// updates.
func (c *SWCache) Learn(block gas.BlockID, owner int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.table.Update(block, owner)
}

// Correct applies the configured policy to a staleness correction.
func (c *SWCache) Correct(block gas.BlockID, owner int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.corrections++
	if c.policy == CorrectionInvalidate {
		c.table.Invalidate(block)
		return
	}
	c.table.Update(block, owner)
}

// Clear drops every cached translation (a reborn locality's previous
// incarnation's cache is meaningless to the new one).
func (c *SWCache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.table.Reset()
}

// Stats returns the full counter set: the underlying table's
// hit/miss/eviction/update counters plus the cache's own staleness
// corrections. (Earlier versions silently discarded the eviction and
// update counts.)
func (c *SWCache) Stats() (hits, misses, evictions, updates, corrections uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, m, ev, up := c.table.Stats()
	return h, m, ev, up, c.corrections
}

// HitRate returns the cache hit rate.
func (c *SWCache) HitRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.table.HitRate()
}

// Len returns the resident entry count.
func (c *SWCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.table.Len()
}
