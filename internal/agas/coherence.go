package agas

import (
	"fmt"
	"sync"

	"nmvgas/internal/gas"
)

// Coherence selects how a replicated block's master keeps its replica
// set coherent with writes.
type Coherence uint8

const (
	// WriteInvalidate (the default) fans an invalidation out to every
	// holder on each write; a stale holder refetches the block from the
	// master on its next read.
	WriteInvalidate Coherence = iota
	// WriteUpdate pushes the written block's new contents to every
	// holder on each write: more write bandwidth, no stale reads after
	// the update lands.
	WriteUpdate
	// RWLease skips per-write coherence traffic entirely: holders serve
	// reads until a bounded lease (Config.LeaseNs) expires, then refetch.
	// Readers observe bounded staleness instead of write-triggered
	// corrections.
	RWLease
)

func (c Coherence) String() string {
	switch c {
	case WriteInvalidate:
		return "write-invalidate"
	case WriteUpdate:
		return "write-update"
	case RWLease:
		return "rw-lease"
	}
	return fmt.Sprintf("coherence(%d)", uint8(c))
}

// ParseCoherence maps a policy name (as printed by String) to its value.
func ParseCoherence(s string) (Coherence, error) {
	switch s {
	case "write-invalidate", "invalidate", "wi":
		return WriteInvalidate, nil
	case "write-update", "update", "wu":
		return WriteUpdate, nil
	case "rw-lease", "lease":
		return RWLease, nil
	}
	return 0, fmt.Errorf("agas: unknown coherence policy %q", s)
}

// ReplicaRoutes is a per-locality read-routing table: block → the rank
// whose replica should serve this locality's reads. The software-managed
// space probes it from the host on every read of a replicated block; the
// static PGAS space fills it once at install time. (The network-managed
// space keeps the equivalent state in the NIC instead — see
// netsim.NIC.InstallReadRoute.)
type ReplicaRoutes struct {
	mu sync.RWMutex
	m  map[gas.BlockID]int
}

// NewReplicaRoutes returns an empty table.
func NewReplicaRoutes() *ReplicaRoutes {
	return &ReplicaRoutes{m: make(map[gas.BlockID]int)}
}

// Set installs the read target for block.
func (r *ReplicaRoutes) Set(block gas.BlockID, target int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[block] = target
}

// Get returns the read target for block, if one is installed.
func (r *ReplicaRoutes) Get(block gas.BlockID) (int, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.m[block]
	return t, ok
}

// Drop removes block's read target.
func (r *ReplicaRoutes) Drop(block gas.BlockID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.m, block)
}

// Len returns the number of installed read targets.
func (r *ReplicaRoutes) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.m)
}
