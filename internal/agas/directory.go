// Package agas implements the software side of the active global address
// space: the home-based ownership directory, the per-locality software
// translation cache, and host-level forwarding tombstones. The
// software-managed baseline uses all three from the host CPU; the
// network-managed mode (package nmagas) keeps the same directory as the
// source of truth but mirrors it into NIC translation state so the data
// path never touches these structures.
package agas

import (
	"sync"

	"nmvgas/internal/gas"
)

// Directory is the authoritative block→owner map kept at each block's
// home locality. It only stores entries for blocks whose owner differs
// from their home; an absent entry means "still at home", which keeps the
// directory proportional to migrated blocks rather than all blocks.
//
// It doubles as the owner-side replica directory: the master of a
// replicated block records its replica set here, and the coherence
// protocol (invalidations, updates, fills) consults it. The replica map
// travels with the master on migration (see runtime migrate), so the
// set is always found where writes land.
type Directory struct {
	mu     sync.RWMutex
	owners map[gas.BlockID]int
	repl   map[gas.BlockID]ReplicaSet
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{
		owners: make(map[gas.BlockID]int),
		repl:   make(map[gas.BlockID]ReplicaSet),
	}
}

// ReplicaSet is the owner-side record of one replicated block: who holds
// the writable master and which ranks hold read replicas.
type ReplicaSet struct {
	Master  int
	Holders []int
}

// clone deep-copies the set so callers can't alias directory state.
func (s ReplicaSet) clone() ReplicaSet {
	return ReplicaSet{Master: s.Master, Holders: append([]int(nil), s.Holders...)}
}

// Owner returns the recorded owner of block and whether an entry exists.
// No entry means the block is at its home.
func (d *Directory) Owner(block gas.BlockID) (int, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	o, ok := d.owners[block]
	return o, ok
}

// Resolve returns the effective owner given the block's home.
func (d *Directory) Resolve(block gas.BlockID, home int) int {
	if o, ok := d.Owner(block); ok {
		return o
	}
	return home
}

// Set records block's current owner. Recording the home owner removes the
// entry (the block returned home).
func (d *Directory) Set(block gas.BlockID, owner, home int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if owner == home {
		delete(d.owners, block)
		return
	}
	d.owners[block] = owner
}

// Drop removes any entry for block (used by free).
func (d *Directory) Drop(block gas.BlockID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.owners, block)
}

// Len returns the number of away-from-home entries.
func (d *Directory) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.owners)
}

// SetReplicas records block's replica set at this (owner-side) directory.
func (d *Directory) SetReplicas(block gas.BlockID, master int, holders []int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.repl[block] = ReplicaSet{Master: master, Holders: append([]int(nil), holders...)}
}

// Replicas returns a copy of block's replica set, if it is replicated.
func (d *Directory) Replicas(block gas.BlockID) (ReplicaSet, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	s, ok := d.repl[block]
	if !ok {
		return ReplicaSet{}, false
	}
	return s.clone(), true
}

// TakeReplicas removes and returns block's replica set — the migration
// path uses it to carry the set to the new master's directory.
func (d *Directory) TakeReplicas(block gas.BlockID) (ReplicaSet, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	s, ok := d.repl[block]
	if !ok {
		return ReplicaSet{}, false
	}
	delete(d.repl, block)
	return s, true
}

// RemoveReplica drops one holder from block's set (e.g. the destination
// of a migration stops being a replica when it becomes the master).
func (d *Directory) RemoveReplica(block gas.BlockID, rank int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	s, ok := d.repl[block]
	if !ok {
		return
	}
	kept := s.Holders[:0]
	for _, h := range s.Holders {
		if h != rank {
			kept = append(kept, h)
		}
	}
	s.Holders = kept
	d.repl[block] = s
}

// DropReplicas removes block's replica set (unreplicate / free).
func (d *Directory) DropReplicas(block gas.BlockID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.repl, block)
}

// Entries returns a snapshot of every away-from-home ownership entry.
// The membership layer uses it to harvest a dying home's routing
// knowledge (the directory is logically replicated metadata, so it
// survives the home's data loss) and to find entries naming a dead
// owner.
func (d *Directory) Entries() map[gas.BlockID]int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make(map[gas.BlockID]int, len(d.owners))
	for b, o := range d.owners {
		out[b] = o
	}
	return out
}

// ReplicaEntries returns a snapshot of every replica set tracked here,
// deep-copied so callers cannot alias directory state.
func (d *Directory) ReplicaEntries() map[gas.BlockID]ReplicaSet {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make(map[gas.BlockID]ReplicaSet, len(d.repl))
	for b, s := range d.repl {
		out[b] = s.clone()
	}
	return out
}

// Clear wipes every ownership entry and replica set. A locality reborn
// through the membership layer's Join starts with an empty directory and
// reclaims authority through the catch-up sync.
func (d *Directory) Clear() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.owners = make(map[gas.BlockID]int)
	d.repl = make(map[gas.BlockID]ReplicaSet)
}

// ReplicatedLen returns the number of replicated blocks tracked here.
func (d *Directory) ReplicatedLen() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.repl)
}
