// Package agas implements the software side of the active global address
// space: the home-based ownership directory, the per-locality software
// translation cache, and host-level forwarding tombstones. The
// software-managed baseline uses all three from the host CPU; the
// network-managed mode (package nmagas) keeps the same directory as the
// source of truth but mirrors it into NIC translation state so the data
// path never touches these structures.
package agas

import (
	"sync"

	"nmvgas/internal/gas"
)

// Directory is the authoritative block→owner map kept at each block's
// home locality. It only stores entries for blocks whose owner differs
// from their home; an absent entry means "still at home", which keeps the
// directory proportional to migrated blocks rather than all blocks.
type Directory struct {
	mu     sync.RWMutex
	owners map[gas.BlockID]int
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{owners: make(map[gas.BlockID]int)}
}

// Owner returns the recorded owner of block and whether an entry exists.
// No entry means the block is at its home.
func (d *Directory) Owner(block gas.BlockID) (int, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	o, ok := d.owners[block]
	return o, ok
}

// Resolve returns the effective owner given the block's home.
func (d *Directory) Resolve(block gas.BlockID, home int) int {
	if o, ok := d.Owner(block); ok {
		return o
	}
	return home
}

// Set records block's current owner. Recording the home owner removes the
// entry (the block returned home).
func (d *Directory) Set(block gas.BlockID, owner, home int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if owner == home {
		delete(d.owners, block)
		return
	}
	d.owners[block] = owner
}

// Drop removes any entry for block (used by free).
func (d *Directory) Drop(block gas.BlockID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.owners, block)
}

// Len returns the number of away-from-home entries.
func (d *Directory) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.owners)
}
