package stats

// TopK is a space-saving heavy-hitters sketch over uint64 keys (Metwally,
// Agrawal, El Abbadi: "Efficient computation of frequent and top-k
// elements in data streams"). It keeps at most K (key, count, err)
// entries: when a new key arrives while the sketch is full, it evicts the
// minimum-count entry and inherits its count as the new entry's error
// bound. The classic guarantees follow: every key whose true frequency
// exceeds N/K is present, each entry's true count lies in
// [count-err, count], and count-err is a guaranteed lower bound.
//
// Memory is fixed at construction — the internal map never exceeds K
// entries — which is what lets the runtime keep one sketch per rank on
// the data path without unbounded growth under adversarial key streams.
type TopK struct {
	k     int
	slots []TopKItem
	idx   map[uint64]int // key -> position in slots
	n     uint64         // total weight offered
}

// TopKItem is one sketch entry. Count overestimates the true frequency by
// at most Err; Count-Err is a guaranteed lower bound.
type TopKItem struct {
	Key   uint64
	Count uint64
	Err   uint64
}

// NewTopK returns a sketch tracking up to k keys. k must be > 0.
func NewTopK(k int) *TopK {
	if k <= 0 {
		panic("stats: TopK capacity must be > 0")
	}
	return &TopK{
		k:     k,
		slots: make([]TopKItem, 0, k),
		idx:   make(map[uint64]int, k),
	}
}

// Offer records `inc` occurrences of key.
func (t *TopK) Offer(key uint64, inc uint64) {
	if inc == 0 {
		return
	}
	t.n += inc
	if i, ok := t.idx[key]; ok {
		t.slots[i].Count += inc
		return
	}
	if len(t.slots) < t.k {
		t.idx[key] = len(t.slots)
		t.slots = append(t.slots, TopKItem{Key: key, Count: inc})
		return
	}
	// Evict the minimum-count entry; the newcomer inherits its count as
	// the error bound (it may have occurred up to that many times while
	// untracked).
	min := 0
	for i := 1; i < len(t.slots); i++ {
		if t.slots[i].Count < t.slots[min].Count {
			min = i
		}
	}
	old := t.slots[min]
	delete(t.idx, old.Key)
	t.idx[key] = min
	t.slots[min] = TopKItem{Key: key, Count: old.Count + inc, Err: old.Count}
}

// N returns the total weight offered so far.
func (t *TopK) N() uint64 { return t.n }

// Len returns the number of tracked entries (≤ K).
func (t *TopK) Len() int { return len(t.slots) }

// Items returns a copy of the tracked entries in unspecified order.
func (t *TopK) Items() []TopKItem {
	out := make([]TopKItem, len(t.slots))
	copy(out, t.slots)
	return out
}

// Merge folds another sketch into this one. Counts for shared keys add;
// error bounds add too (both sides' overestimates compound). If both
// inputs were exact (never evicted), the merge is exact as well.
func (t *TopK) Merge(o *TopK) {
	for _, it := range o.slots {
		t.n += it.Count
		if i, ok := t.idx[it.Key]; ok {
			t.slots[i].Count += it.Count
			t.slots[i].Err += it.Err
			continue
		}
		if len(t.slots) < t.k {
			t.idx[it.Key] = len(t.slots)
			t.slots = append(t.slots, it)
			continue
		}
		min := 0
		for i := 1; i < len(t.slots); i++ {
			if t.slots[i].Count < t.slots[min].Count {
				min = i
			}
		}
		if t.slots[min].Count >= it.Count {
			// The incoming entry is no hotter than anything tracked:
			// absorb its weight into the victim's error budget instead
			// of churning slots.
			t.slots[min].Count += it.Count
			t.slots[min].Err += it.Count
			continue
		}
		old := t.slots[min]
		delete(t.idx, old.Key)
		t.idx[it.Key] = min
		t.slots[min] = TopKItem{Key: it.Key, Count: old.Count + it.Count, Err: old.Count + it.Err}
	}
}

// Reset clears the sketch for the next epoch, keeping capacity.
func (t *TopK) Reset() {
	t.slots = t.slots[:0]
	for k := range t.idx {
		delete(t.idx, k)
	}
	t.n = 0
}
