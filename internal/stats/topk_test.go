package stats

import (
	"math/rand"
	"testing"
)

// Fewer distinct keys than capacity: the sketch is exact, zero error.
func TestTopKExactUnderCapacity(t *testing.T) {
	tk := NewTopK(16)
	want := map[uint64]uint64{}
	for i := 0; i < 1000; i++ {
		key := uint64(i % 10)
		tk.Offer(key, 1)
		want[key]++
	}
	if tk.N() != 1000 {
		t.Fatalf("N=%d want 1000", tk.N())
	}
	if tk.Len() != 10 {
		t.Fatalf("Len=%d want 10", tk.Len())
	}
	for _, it := range tk.Items() {
		if it.Err != 0 {
			t.Fatalf("key %d has err %d, want 0 (under capacity)", it.Key, it.Err)
		}
		if it.Count != want[it.Key] {
			t.Fatalf("key %d count %d want %d", it.Key, it.Count, want[it.Key])
		}
	}
}

// Space-saving guarantees on an overflowing stream: every entry's true
// count is within [Count-Err, Count], and any key with true frequency
// > N/K is tracked.
func TestTopKBoundsOverCapacity(t *testing.T) {
	const k = 8
	tk := NewTopK(k)
	rng := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(rng, 1.5, 1, 255)
	truth := map[uint64]uint64{}
	for i := 0; i < 20000; i++ {
		key := zipf.Uint64()
		tk.Offer(key, 1)
		truth[key]++
	}
	for _, it := range tk.Items() {
		lo := it.Count - it.Err
		if truth[it.Key] < lo || truth[it.Key] > it.Count {
			t.Fatalf("key %d: true %d outside [%d, %d]", it.Key, truth[it.Key], lo, it.Count)
		}
	}
	// Heavy-hitter completeness: anything hotter than N/K must be present.
	tracked := map[uint64]bool{}
	for _, it := range tk.Items() {
		tracked[it.Key] = true
	}
	threshold := tk.N() / uint64(k)
	for key, n := range truth {
		if n > threshold && !tracked[key] {
			t.Fatalf("heavy hitter %d (count %d > N/K=%d) not tracked", key, n, threshold)
		}
	}
}

// Merging exact sketches yields exact sums — the property the policy
// engine relies on when folding per-rank sketches into a global view.
func TestTopKMergeExact(t *testing.T) {
	a, b := NewTopK(32), NewTopK(32)
	want := map[uint64]uint64{}
	for i := 0; i < 500; i++ {
		ka, kb := uint64(i%7), uint64(3+i%9)
		a.Offer(ka, 2)
		b.Offer(kb, 3)
		want[ka] += 2
		want[kb] += 3
	}
	a.Merge(b)
	if a.N() != 500*2+500*3 {
		t.Fatalf("merged N=%d want %d", a.N(), 500*2+500*3)
	}
	got := map[uint64]uint64{}
	for _, it := range a.Items() {
		if it.Err != 0 {
			t.Fatalf("exact merge produced err=%d for key %d", it.Err, it.Key)
		}
		got[it.Key] = it.Count
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("key %d: merged count %d want %d", k, got[k], n)
		}
	}
}

// Merge keeps the error-bound invariant even when both sides overflowed.
func TestTopKMergeBounds(t *testing.T) {
	const k = 8
	a, b := NewTopK(k), NewTopK(k)
	rng := rand.New(rand.NewSource(7))
	truth := map[uint64]uint64{}
	for i := 0; i < 10000; i++ {
		key := uint64(rng.Intn(64))
		if i%2 == 0 {
			a.Offer(key, 1)
		} else {
			b.Offer(key, 1)
		}
		truth[key]++
	}
	a.Merge(b)
	if a.Len() > k {
		t.Fatalf("merge grew past capacity: %d > %d", a.Len(), k)
	}
	if a.N() != 10000 {
		t.Fatalf("merged N=%d want 10000", a.N())
	}
	for _, it := range a.Items() {
		if truth[it.Key] > it.Count {
			t.Fatalf("key %d: count %d underestimates true %d", it.Key, it.Count, truth[it.Key])
		}
	}
}

func TestTopKReset(t *testing.T) {
	tk := NewTopK(4)
	for i := 0; i < 100; i++ {
		tk.Offer(uint64(i), 1)
	}
	tk.Reset()
	if tk.N() != 0 || tk.Len() != 0 {
		t.Fatalf("reset left N=%d Len=%d", tk.N(), tk.Len())
	}
	tk.Offer(9, 5)
	items := tk.Items()
	if len(items) != 1 || items[0].Count != 5 || items[0].Err != 0 {
		t.Fatalf("post-reset offer wrong: %+v", items)
	}
}
