package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them as an aligned text table or as
// CSV. Each experiment in the harness emits exactly one Table, matching
// the rows/series its paper table or figure reports.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v, and float64 cells
// with %.2f.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns the formatted rows (for tests).
func (t *Table) Rows() [][]string { return t.rows }

// Fprint renders the aligned table to w.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV renders the table as comma-separated values (header + rows). Cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
