// Package stats provides the measurement utilities shared by the
// experiment harness: atomic counters, latency histograms with percentile
// queries, and fixed-width table / CSV rendering for regenerating the
// paper's tables and figure series.
package stats

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is an atomic event counter.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Histogram records int64 samples (typically simulated nanoseconds) and
// answers percentile queries. Up to maxExact samples are kept exactly;
// beyond that, reservoir sampling keeps percentiles statistically sound
// without unbounded memory.
type Histogram struct {
	mu      sync.Mutex
	samples []int64
	n       int64 // total observed
	sum     int64
	min     int64
	max     int64
	rng     uint64 // xorshift state for the reservoir
}

const maxExact = 1 << 16

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64, max: math.MinInt64, rng: 0x9E3779B97F4A7C15}
}

// Record adds one sample.
func (h *Histogram) Record(v int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.n++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	if len(h.samples) < maxExact {
		h.samples = append(h.samples, v)
		return
	}
	// Reservoir: replace a random slot with probability maxExact/n.
	h.rng ^= h.rng << 13
	h.rng ^= h.rng >> 7
	h.rng ^= h.rng << 17
	if idx := h.rng % uint64(h.n); idx < maxExact {
		h.samples[idx] = v
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Mean returns the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Percentile returns the p-th percentile (0 < p <= 100) of the retained
// samples, or 0 with no samples.
func (h *Histogram) Percentile(p float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	s := append([]int64(nil), h.samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(math.Ceil(p/100*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// P50 is Percentile(50).
func (h *Histogram) P50() int64 { return h.Percentile(50) }

// P95 is Percentile(95).
func (h *Histogram) P95() int64 { return h.Percentile(95) }

// P99 is Percentile(99).
func (h *Histogram) P99() int64 { return h.Percentile(99) }
