package stats

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("Load = %d", c.Load())
	}
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); c.Inc() }()
	}
	wg.Wait()
	if c.Load() != 15 {
		t.Fatalf("concurrent Load = %d", c.Load())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.P50() != 0 {
		t.Fatal("empty histogram must answer zeros")
	}
	for _, v := range []int64{10, 20, 30, 40} {
		h.Record(v)
	}
	if h.Count() != 4 || h.Mean() != 25 || h.Min() != 10 || h.Max() != 40 {
		t.Fatalf("count=%d mean=%v min=%d max=%d", h.Count(), h.Mean(), h.Min(), h.Max())
	}
	if p := h.P50(); p != 20 {
		t.Fatalf("P50 = %d", p)
	}
	if p := h.Percentile(100); p != 40 {
		t.Fatalf("P100 = %d", p)
	}
}

func TestHistogramPercentilesOnUniform(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 1000; i++ {
		h.Record(i)
	}
	if p := h.P50(); p < 450 || p > 550 {
		t.Fatalf("P50 = %d", p)
	}
	if p := h.P99(); p < 950 || p > 1000 {
		t.Fatalf("P99 = %d", p)
	}
}

func TestHistogramReservoirBounded(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(1))
	const n = maxExact * 3
	for i := 0; i < n; i++ {
		h.Record(int64(rng.Intn(1000)))
	}
	if h.Count() != n {
		t.Fatalf("Count = %d", h.Count())
	}
	if len(h.samples) > maxExact {
		t.Fatalf("reservoir grew to %d", len(h.samples))
	}
	// Percentiles stay statistically plausible after sampling.
	if p := h.P50(); p < 400 || p > 600 {
		t.Fatalf("sampled P50 = %d", p)
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				h.Record(i)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "size", "latency_us", "mode")
	tb.AddRow(8, 1.25, "pgas")
	tb.AddRow(1024, 3.5, "agas-sw")
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	var sb strings.Builder
	if err := tb.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== Demo ==", "size", "latency_us", "1.25", "agas-sw", "----"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow("plain", `quo"te,comma`)
	csv := tb.CSV()
	want := "a,b\nplain,\"quo\"\"te,comma\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestTableRowFormatting(t *testing.T) {
	tb := NewTable("x", "c")
	tb.AddRow(3.14159)
	if got := tb.Rows()[0][0]; got != "3.14" {
		t.Fatalf("float cell = %q", got)
	}
	tb.AddRow(int64(7))
	if got := tb.Rows()[1][0]; got != "7" {
		t.Fatalf("int cell = %q", got)
	}
}
