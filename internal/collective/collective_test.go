package collective

import (
	"sync"
	"testing"

	"nmvgas/internal/lco"
	"nmvgas/internal/runtime"
)

var modes = []runtime.Mode{runtime.PGAS, runtime.AGASSW, runtime.AGASNM}
var engines = []runtime.EngineKind{runtime.EngineDES, runtime.EngineGo}

func matrix(t *testing.T, ranks int, fn func(t *testing.T, w *runtime.World, o *Ops)) {
	t.Helper()
	for _, m := range modes {
		for _, e := range engines {
			m, e := m, e
			t.Run(m.String()+"/"+e.String(), func(t *testing.T) {
				w, err := runtime.NewWorld(runtime.Config{Ranks: ranks, Mode: m, Engine: e})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(w.Stop)
				o := New(w)
				fn(t, w, o)
			})
		}
	}
}

func TestBroadcastReachesEveryRank(t *testing.T) {
	matrix(t, 7, func(t *testing.T, w *runtime.World, o *Ops) {
		var mu sync.Mutex
		seen := make(map[int]int)
		mark := w.Register("mark", func(c *runtime.Ctx) {
			mu.Lock()
			seen[c.Rank()]++
			mu.Unlock()
			c.Continue(nil)
		})
		w.Start()
		gate := o.Broadcast(2, mark, []byte{1, 2, 3})
		w.MustWait(gate)
		mu.Lock()
		defer mu.Unlock()
		if len(seen) != 7 {
			t.Fatalf("broadcast reached %d of 7 ranks: %v", len(seen), seen)
		}
		for r, n := range seen {
			if n != 1 {
				t.Fatalf("rank %d ran %d times", r, n)
			}
		}
	})
}

func TestBroadcastPayloadDelivered(t *testing.T) {
	matrix(t, 4, func(t *testing.T, w *runtime.World, o *Ops) {
		var mu sync.Mutex
		bad := 0
		check := w.Register("check", func(c *runtime.Ctx) {
			if len(c.P.Payload) != 3 || c.P.Payload[0] != 9 {
				mu.Lock()
				bad++
				mu.Unlock()
			}
			c.Continue(nil)
		})
		w.Start()
		w.MustWait(o.Broadcast(0, check, []byte{9, 9, 9}))
		if bad != 0 {
			t.Fatalf("%d ranks saw a corrupted payload", bad)
		}
	})
}

func TestReduceSumsRankContributions(t *testing.T) {
	matrix(t, 6, func(t *testing.T, w *runtime.World, o *Ops) {
		give := w.Register("give", func(c *runtime.Ctx) {
			c.Continue(lco.EncodeI64(int64(c.Rank())))
		})
		w.Start()
		v := w.MustWait(o.Reduce(3, give, nil, lco.SumI64))
		if got := lco.DecodeI64(v); got != 0+1+2+3+4+5 {
			t.Fatalf("reduce = %d", got)
		}
	})
}

func TestReduceMax(t *testing.T) {
	matrix(t, 5, func(t *testing.T, w *runtime.World, o *Ops) {
		give := w.Register("give", func(c *runtime.Ctx) {
			c.Continue(lco.EncodeI64(int64(c.Rank() * 10)))
		})
		w.Start()
		v := w.MustWait(o.Reduce(0, give, nil, lco.MaxI64))
		if got := lco.DecodeI64(v); got != 40 {
			t.Fatalf("max = %d", got)
		}
	})
}

func TestBarrier(t *testing.T) {
	matrix(t, 8, func(t *testing.T, w *runtime.World, o *Ops) {
		w.Start()
		for i := 0; i < 3; i++ {
			w.MustWait(o.Barrier(i % 8))
		}
	})
}

func TestAllReduceDeliversEverywhere(t *testing.T) {
	matrix(t, 4, func(t *testing.T, w *runtime.World, o *Ops) {
		give := w.Register("give", func(c *runtime.Ctx) {
			c.Continue(lco.EncodeI64(1))
		})
		w.Start()
		futs := o.AllReduce(0, give, nil, lco.SumI64)
		for r, f := range futs {
			v := w.MustWait(f)
			if got := lco.DecodeI64(v); got != 4 {
				t.Fatalf("rank %d allreduce = %d", r, got)
			}
		}
	})
}

func TestSingleRankCollectives(t *testing.T) {
	w, err := runtime.NewWorld(runtime.Config{Ranks: 1, Engine: runtime.EngineDES})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	o := New(w)
	give := w.Register("give", func(c *runtime.Ctx) { c.Continue(lco.EncodeI64(7)) })
	w.Start()
	if got := lco.DecodeI64(w.MustWait(o.Reduce(0, give, nil, lco.SumI64))); got != 7 {
		t.Fatalf("1-rank reduce = %d", got)
	}
	w.MustWait(o.Barrier(0))
	if err := Validate(w); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastScalesLogarithmically(t *testing.T) {
	// A tree broadcast's critical path grows ~log(ranks): 16 ranks must
	// cost well under 4x the 4-rank time (a flat/linear broadcast would
	// be ~4x).
	timeFor := func(ranks int) int64 {
		w, err := runtime.NewWorld(runtime.Config{Ranks: ranks, Mode: runtime.PGAS, Engine: runtime.EngineDES})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Stop()
		o := New(w)
		w.Start()
		start := w.Now()
		w.MustWait(o.Barrier(0))
		return int64(w.Now() - start)
	}
	t4, t16 := timeFor(4), timeFor(16)
	if t16 <= t4 {
		t.Fatalf("16 ranks (%d) not slower than 4 (%d)", t16, t4)
	}
	if t16 >= 3*t4 {
		t.Fatalf("broadcast looks linear: 4 ranks %dns, 16 ranks %dns", t4, t16)
	}
}
