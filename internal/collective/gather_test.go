package collective

import (
	"bytes"
	"sync"
	"testing"

	"nmvgas/internal/parcel"
	"nmvgas/internal/runtime"
)

func TestGatherCollectsPerRankValues(t *testing.T) {
	matrix(t, 6, func(t *testing.T, w *runtime.World, o *Ops) {
		give := w.Register("give", func(c *runtime.Ctx) {
			c.Continue([]byte{byte(c.Rank()), byte(c.Rank() * 2)})
		})
		w.Start()
		v := w.MustWait(o.Gather(2, give, nil))
		got := ParseGather(v)
		if len(got) != 6 {
			t.Fatalf("gathered %d ranks: %v", len(got), GatherRanks(got))
		}
		for r, data := range got {
			want := []byte{byte(r), byte(r * 2)}
			if !bytes.Equal(data, want) {
				t.Fatalf("rank %d contributed %v, want %v", r, data, want)
			}
		}
	})
}

func TestGatherEmptyContributions(t *testing.T) {
	matrix(t, 3, func(t *testing.T, w *runtime.World, o *Ops) {
		give := w.Register("give", func(c *runtime.Ctx) { c.Continue(nil) })
		w.Start()
		v := w.MustWait(o.Gather(0, give, nil))
		got := ParseGather(v)
		if len(got) != 3 {
			t.Fatalf("gathered %d ranks", len(got))
		}
		for r, data := range got {
			if len(data) != 0 {
				t.Fatalf("rank %d contributed %v, want empty", r, data)
			}
		}
	})
}

func TestAllGatherDeliversEverywhere(t *testing.T) {
	matrix(t, 4, func(t *testing.T, w *runtime.World, o *Ops) {
		give := w.Register("give", func(c *runtime.Ctx) {
			c.Continue([]byte{byte(c.Rank() + 10)})
		})
		w.Start()
		futs := o.AllGather(1, give, nil)
		for r, f := range futs {
			got := ParseGather(w.MustWait(f))
			if len(got) != 4 {
				t.Fatalf("rank %d sees %d contributions", r, len(got))
			}
			for cr, data := range got {
				if data[0] != byte(cr+10) {
					t.Fatalf("rank %d sees wrong value for %d", r, cr)
				}
			}
		}
	})
}

func TestScatterDeliversChunks(t *testing.T) {
	matrix(t, 5, func(t *testing.T, w *runtime.World, o *Ops) {
		var mu sync.Mutex
		got := make(map[int][]byte)
		sink := w.Register("sink", func(c *runtime.Ctx) {
			mu.Lock()
			got[c.Rank()] = append([]byte(nil), c.P.Payload...)
			mu.Unlock()
			c.Continue(nil)
		})
		w.Start()
		chunks := make([][]byte, 5)
		for r := range chunks {
			chunks[r] = []byte{byte(100 + r), byte(r)}
		}
		w.MustWait(o.Scatter(2, sink, chunks))
		mu.Lock()
		defer mu.Unlock()
		for r := 0; r < 5; r++ {
			if !bytes.Equal(got[r], chunks[r]) {
				t.Fatalf("rank %d got %v, want %v", r, got[r], chunks[r])
			}
		}
	})
}

func TestScatterValidatesChunkCount(t *testing.T) {
	w, err := runtime.NewWorld(runtime.Config{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	o := New(w)
	w.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	o.Scatter(0, runtime.ANop, [][]byte{{1}})
}

func TestGatherPayloadReachesLeaves(t *testing.T) {
	matrix(t, 4, func(t *testing.T, w *runtime.World, o *Ops) {
		echoPay := w.Register("echoPay", func(c *runtime.Ctx) {
			c.Continue(append([]byte{byte(c.Rank())}, c.P.Payload...))
		})
		w.Start()
		v := w.MustWait(o.Gather(0, echoPay, []byte{0xAB}))
		got := ParseGather(v)
		for r, data := range got {
			if len(data) != 2 || data[0] != byte(r) || data[1] != 0xAB {
				t.Fatalf("rank %d entry %v", r, data)
			}
		}
	})
}

func TestParseGatherRoundTrip(t *testing.T) {
	blob := parcel.PutU32(nil, 3)
	blob = parcel.PutU32(blob, 2)
	blob = append(blob, 7, 8)
	blob = parcel.PutU32(blob, 0)
	blob = parcel.PutU32(blob, 0)
	got := ParseGather(blob)
	if !bytes.Equal(got[3], []byte{7, 8}) || len(got[0]) != 0 {
		t.Fatalf("parse %v", got)
	}
	ranks := GatherRanks(got)
	if len(ranks) != 2 || ranks[0] != 0 || ranks[1] != 3 {
		t.Fatalf("ranks %v", ranks)
	}
}
