package collective

import (
	"sort"

	"nmvgas/internal/gas"
	"nmvgas/internal/parcel"
	"nmvgas/internal/runtime"
)

// Gather runs action on every locality and collects each rank's
// continuation value at the root, tagged by rank. The returned LCO fires
// with a blob parsed by ParseGather. Distribution uses the same binary
// tree as Broadcast; collection is flat into a reduce LCO whose combiner
// concatenates tagged entries (arrival order — ParseGather restores rank
// order).
func (o *Ops) Gather(from int, action parcel.ActionID, payload []byte) *runtime.LCORef {
	red := o.w.NewReduce(from, o.w.Ranks(), concatCombiner)
	o.w.Proc(from).Invoke(o.w.LocalityGVA(0), o.gather, o.encodeBcast(action, red.G, payload))
	return red
}

// gatherNode mirrors bcastNode but interposes a per-locality future that
// tags the user action's result with the rank before contributing it.
func (o *Ops) gatherNode(c *runtime.Ctx) {
	p := c.P.Payload
	lo := parcel.U32(p, 0)
	hi := parcel.U32(p, 4)
	userAct := parcel.ActionID(uint16(p[8]) | uint16(p[9])<<8)
	gather := gas.GVA(parcel.U64(p, 10))
	userPayload := p[bcastHdr:]

	rank := c.Rank()
	w := c.World()
	leaf := w.NewFuture(rank)
	leaf.OnFire(func(v []byte) {
		entry := parcel.PutU32(nil, uint32(rank))
		entry = parcel.PutU32(entry, uint32(len(v)))
		entry = append(entry, v...)
		// The leaf future fires in this locality's execution context
		// (the lco.set parcel ran here), so sending directly is safe.
		c.ContinueTo(gather, entry)
	})
	c.CallCC(w.LocalityGVA(rank), userAct, userPayload, runtime.ALCOSet, leaf.G)

	childLo := lo + 1
	if childLo >= hi {
		return
	}
	mid := (childLo + hi + 1) / 2
	o.sendRangeVia(c, o.gather, childLo, mid, p)
	o.sendRangeVia(c, o.gather, mid, hi, p)
}

// concatCombiner appends tagged entries; ParseGather decodes them.
func concatCombiner(acc, in []byte) []byte { return append(acc, in...) }

// ParseGather decodes a Gather result into per-rank values, in rank
// order.
func ParseGather(v []byte) map[int][]byte {
	out := make(map[int][]byte)
	for off := 0; off+8 <= len(v); {
		rank := int(parcel.U32(v, off))
		n := int(parcel.U32(v, off+4))
		off += 8
		out[rank] = v[off : off+n]
		off += n
	}
	return out
}

// GatherRanks returns the sorted rank list of a parsed gather (test
// convenience).
func GatherRanks(m map[int][]byte) []int {
	ranks := make([]int, 0, len(m))
	for r := range m {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	return ranks
}

// AllGather gathers at `from` and re-broadcasts the blob: every rank's
// future fires with the same ParseGather-able value.
func (o *Ops) AllGather(from int, action parcel.ActionID, payload []byte) []*runtime.LCORef {
	futs := make([]*runtime.LCORef, o.w.Ranks())
	for r := range futs {
		futs[r] = o.w.NewFuture(r)
	}
	g := o.Gather(from, action, payload)
	g.OnFire(func(v []byte) {
		for r := range futs {
			r := r
			o.w.Proc(from).Invoke(futs[r].G, runtime.ALCOSet, v)
		}
	})
	return futs
}

// Scatter delivers chunks[r] to rank r by running action there with that
// chunk as payload. The returned gate fires when every action has
// continued.
func (o *Ops) Scatter(from int, action parcel.ActionID, chunks [][]byte) *runtime.LCORef {
	if len(chunks) != o.w.Ranks() {
		panic("collective: Scatter needs one chunk per rank")
	}
	gate := o.w.NewAndGate(from, o.w.Ranks())
	for r := range chunks {
		r := r
		chunk := chunks[r]
		o.w.Proc(from).Run(func() {
			o.w.Locality(from).SendParcel(&parcel.Parcel{
				Action: action, Target: o.w.LocalityGVA(r), Payload: chunk,
				CAction: runtime.ALCOSet, CTarget: gate.G,
			})
		})
	}
	return gate
}

// sendRangeVia forwards a subtree range with an explicit node action.
func (o *Ops) sendRangeVia(c *runtime.Ctx, act parcel.ActionID, lo, hi uint32, orig []byte) {
	if lo >= hi {
		return
	}
	p := append([]byte(nil), orig...)
	copy(p[0:], parcel.PutU32(nil, lo))
	copy(p[4:], parcel.PutU32(nil, hi))
	c.Call(o.w.LocalityGVA(int(lo)), act, p)
}
