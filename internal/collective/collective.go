// Package collective builds tree-structured collective operations —
// broadcast, reduce, allreduce, barrier — from parcels and LCOs. Nothing
// here touches the network layer directly: collectives are *applications*
// of the message-driven runtime, so their cost differences across GAS
// modes come out of the same translation machinery the experiments
// measure.
package collective

import (
	"fmt"

	"nmvgas/internal/gas"
	"nmvgas/internal/lco"
	"nmvgas/internal/parcel"
	"nmvgas/internal/runtime"
)

// Ops holds the registered collective actions for one world. Create it
// with New before World.Start.
type Ops struct {
	w      *runtime.World
	bcast  parcel.ActionID
	gather parcel.ActionID
}

// bcast payload layout:
//
//	0..3   lo (uint32)           — subtree range [lo, hi)
//	4..7   hi (uint32)
//	8..9   user action (uint16)
//	10..17 gather LCO GVA (uint64)
//	18..   user payload
const bcastHdr = 18

// New registers the collective plumbing actions on w. Must run before
// w.Start.
func New(w *runtime.World) *Ops {
	o := &Ops{w: w}
	o.bcast = w.Register("collective.bcast", o.bcastNode)
	o.gather = w.Register("collective.gather", o.gatherNode)
	return o
}

// bcastNode runs at the first rank of its subtree range: execute the user
// action locally (continuation to the gather LCO), then fan out to two
// child subtrees.
func (o *Ops) bcastNode(c *runtime.Ctx) {
	p := c.P.Payload
	lo := parcel.U32(p, 0)
	hi := parcel.U32(p, 4)
	userAct := parcel.ActionID(uint16(p[8]) | uint16(p[9])<<8)
	gather := gas.GVA(parcel.U64(p, 10))
	userPayload := p[bcastHdr:]

	// Run the user action on this locality, wired to the gather LCO.
	c.CallCC(o.w.LocalityGVA(c.Rank()), userAct, userPayload, runtime.ALCOSet, gather)

	// Fan out: split (lo, hi) minus self into two halves.
	childLo := lo + 1
	if childLo >= hi {
		return
	}
	mid := (childLo + hi + 1) / 2
	o.sendRange(c, childLo, mid, p)
	o.sendRange(c, mid, hi, p)
}

func (o *Ops) sendRange(c *runtime.Ctx, lo, hi uint32, orig []byte) {
	if lo >= hi {
		return
	}
	p := append([]byte(nil), orig...)
	copy(p[0:], parcel.PutU32(nil, lo))
	copy(p[4:], parcel.PutU32(nil, hi))
	c.Call(o.w.LocalityGVA(int(lo)), o.bcast, p)
}

func (o *Ops) encodeBcast(userAct parcel.ActionID, gather gas.GVA, payload []byte) []byte {
	p := make([]byte, 0, bcastHdr+len(payload))
	p = parcel.PutU32(p, 0)
	p = parcel.PutU32(p, uint32(o.w.Ranks()))
	p = append(p, byte(userAct), byte(userAct>>8))
	p = parcel.PutU64(p, uint64(gather))
	return append(p, payload...)
}

// start launches the tree from rank `from` with a fresh gather LCO.
func (o *Ops) start(from int, userAct parcel.ActionID, payload []byte, gatherObj *runtime.LCORef) {
	o.w.Proc(from).Invoke(o.w.LocalityGVA(0), o.bcast, o.encodeBcast(userAct, gatherObj.G, payload))
}

// Broadcast runs action once on every locality. The returned gate fires
// once every locality's action has continued (actions must call
// ctx.Continue, possibly with nil).
func (o *Ops) Broadcast(from int, action parcel.ActionID, payload []byte) *runtime.LCORef {
	gate := o.w.NewAndGate(from, o.w.Ranks())
	o.start(from, action, payload, gate)
	return gate
}

// Reduce runs action once on every locality and folds the continuation
// values through comb. The returned LCO fires with the folded value.
func (o *Ops) Reduce(from int, action parcel.ActionID, payload []byte, comb lco.Combiner) *runtime.LCORef {
	red := o.w.NewReduce(from, o.w.Ranks(), comb)
	o.start(from, action, payload, red)
	return red
}

// Barrier returns a gate that fires when every locality has processed a
// no-op — a driver-level barrier.
func (o *Ops) Barrier(from int) *runtime.LCORef {
	return o.Broadcast(from, runtime.ANop, nil)
}

// AllReduce performs Reduce then re-broadcasts the result: every rank's
// returned future fires with the reduced value.
func (o *Ops) AllReduce(from int, action parcel.ActionID, payload []byte, comb lco.Combiner) []*runtime.LCORef {
	futs := make([]*runtime.LCORef, o.w.Ranks())
	for r := range futs {
		futs[r] = o.w.NewFuture(r)
	}
	red := o.Reduce(from, action, payload, comb)
	red.OnFire(func(v []byte) {
		for r := range futs {
			r := r
			o.w.Proc(from).Invoke(futs[r].G, runtime.ALCOSet, v)
		}
	})
	return futs
}

// Validate sanity-checks a world for collective use.
func Validate(w *runtime.World) error {
	if w.Ranks() < 1 {
		return fmt.Errorf("collective: empty world")
	}
	return nil
}
