// Package microbench holds the wall-clock microbenchmark bodies for the
// runtime's own fast paths, shared between the `go test -bench` harness
// (bench_test.go) and the vgasbench -bench-json emitter so both report
// the exact same workloads. Each body follows testing.B conventions and
// can be driven by testing.Benchmark from a plain binary.
package microbench

import (
	"sync/atomic"
	"testing"
	"time"

	"nmvgas/internal/gas"
	"nmvgas/internal/netsim"
	"nmvgas/internal/runtime"
	"nmvgas/vgas"
)

// Result is one benchmark outcome in machine-readable form.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// MsgsPerSec is the send→deliver rate where the benchmark measures
	// one (0 elsewhere).
	MsgsPerSec float64 `json:"msgs_per_sec,omitempty"`
	// P50Ns/P95Ns/P99Ns are the runtime's own latency-histogram
	// percentiles for benchmarks that run with Config.Metrics on
	// (0 elsewhere).
	P50Ns float64 `json:"p50_ns,omitempty"`
	P95Ns float64 `json:"p95_ns,omitempty"`
	P99Ns float64 `json:"p99_ns,omitempty"`
	N     int     `json:"n"`
}

// reportLatency surfaces one latency summary as custom benchmark metrics
// so testing.Benchmark callers (RunAll, the CI smoke job) see the
// percentiles next to ns/op.
func reportLatency(b *testing.B, l runtime.LatencySummary) {
	if l.Count == 0 {
		return
	}
	b.ReportMetric(float64(l.P50Ns), "p50_ns")
	b.ReportMetric(float64(l.P95Ns), "p95_ns")
	b.ReportMetric(float64(l.P99Ns), "p99_ns")
}

// GoEnginePump is the send→deliver pump on the goroutine engine: rank 0
// fires b.N no-continuation parcels at a block on rank 1 and waits for
// the last to execute. It measures the whole fast path — SendParcel,
// source translation, transport delivery, the destination actor's
// mailbox, and action dispatch — as wall-clock msgs/sec and allocs/op.
func GoEnginePump(b *testing.B) { goEnginePump(b, false) }

// GoEnginePumpMetrics is the same pump with Config.Metrics on, so its
// ns/op and allocs/op expose the enabled-path cost directly against
// GoEnginePump's, and the runtime's send→exec latency percentiles ride
// along as p50_ns/p95_ns/p99_ns.
func GoEnginePumpMetrics(b *testing.B) { goEnginePump(b, true) }

func goEnginePump(b *testing.B, metrics bool) {
	w, err := vgas.NewWorld(vgas.Config{
		Ranks: 2, Mode: vgas.AGASNM, Engine: vgas.EngineGo, Metrics: metrics,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Stop()
	var ran atomic.Int64
	done := make(chan struct{})
	target := int64(b.N)
	count := w.Register("count", func(c *runtime.Ctx) {
		if ran.Add(1) == target {
			close(done)
		}
	})
	w.Start()
	lay, err := w.AllocLocal(1, 64, 1)
	if err != nil {
		b.Fatal(err)
	}
	g := lay.BlockAt(0)
	p := w.Proc(0)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		p.Invoke(g, count, nil)
	}
	<-done
	b.StopTimer()
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "msgs/sec")
	if metrics {
		reportLatency(b, w.Stats().Latencies.ParcelExec)
	}
}

// putWorld builds the standard 2-rank one-sided benchmark world: a
// 4 KiB block resident on rank 1, driven from rank 0.
func putWorld(b *testing.B, eng vgas.EngineKind, metrics bool) (*vgas.World, gas.GVA) {
	w, err := vgas.NewWorld(vgas.Config{Ranks: 2, Mode: vgas.AGASNM, Engine: eng, Metrics: metrics})
	if err != nil {
		b.Fatal(err)
	}
	w.Start()
	lay, err := w.AllocLocal(1, 4096, 1)
	if err != nil {
		b.Fatal(err)
	}
	return w, lay.BlockAt(0)
}

// enginePut measures one blocking put round trip (send path + completion)
// per iteration on the given engine.
func enginePut(b *testing.B, eng vgas.EngineKind, metrics bool) {
	w, g := putWorld(b, eng, metrics)
	defer w.Stop()
	buf := make([]byte, 64)
	b.SetBytes(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Proc(0).PutWait(g, buf)
	}
	b.StopTimer()
	if metrics {
		reportLatency(b, w.Stats().Latencies.PutDone)
	}
}

// GoEnginePut is the wall-clock one-sided put throughput on the
// goroutine engine: the driver pipelines b.N 64 B puts through a bounded
// in-flight window (so wire buffers stay pooled) and waits for the last
// coalesced ack. msgs/sec is the headline; allocs/op covers the whole
// issue→DMA→ack path.
func GoEnginePut(b *testing.B) {
	w, g := putWorld(b, vgas.EngineGo, false)
	defer w.Stop()
	const window = 1024
	tokens := make(chan struct{}, window)
	done := make(chan struct{})
	var acked atomic.Int64
	target := int64(b.N)
	cb := func() {
		<-tokens
		if acked.Add(1) == target {
			close(done)
		}
	}
	p := w.Proc(0)
	buf := make([]byte, 64)
	b.SetBytes(64)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		tokens <- struct{}{}
		p.PutAsync(g, buf, cb)
	}
	<-done
	b.StopTimer()
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "msgs/sec")
}

// GoEngineGet is the wall-clock one-sided get round trip on the
// goroutine engine. GetWaitInto reuses the caller's buffer and the reply
// rides a pooled wire buffer, so the steady state allocates nothing per
// op.
func GoEngineGet(b *testing.B) {
	w, g := putWorld(b, vgas.EngineGo, false)
	defer w.Stop()
	p := w.Proc(0)
	buf := make([]byte, 64)
	b.SetBytes(64)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		p.GetWaitInto(g, buf)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "msgs/sec")
}

// GoEnginePutVec writes 8 scattered 64 B fragments per iteration as one
// wire message with one ack.
func GoEnginePutVec(b *testing.B) {
	w, g := putWorld(b, vgas.EngineGo, false)
	defer w.Stop()
	p := w.Proc(0)
	frag := make([]byte, 64)
	segs := make([]vgas.PutSeg, 8)
	for i := range segs {
		segs[i] = vgas.PutSeg{Off: uint32(i * 512), Data: frag}
	}
	b.SetBytes(8 * 64)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		p.PutVecWait(g, segs)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "msgs/sec")
}

// GoEngineGetVec gathers 8 scattered 64 B fragments per iteration as one
// request with one reply.
func GoEngineGetVec(b *testing.B) {
	w, g := putWorld(b, vgas.EngineGo, false)
	defer w.Stop()
	p := w.Proc(0)
	segs := make([]vgas.GetSeg, 8)
	for i := range segs {
		segs[i] = vgas.GetSeg{Off: uint32(i * 512), N: 64}
	}
	buf := make([]byte, 8*64)
	b.SetBytes(8 * 64)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		p.GetVecWaitInto(g, segs, buf)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "msgs/sec")
}

// GoEngineCoalesce is the pump workload with parcel coalescing on: b.N
// no-continuation parcels flow through 16-deep per-destination batches
// that the receiving side scatters, measuring the batched fast path end
// to end.
func GoEngineCoalesce(b *testing.B) {
	w, err := vgas.NewWorld(vgas.Config{
		Ranks:    2,
		Mode:     vgas.AGASNM,
		Engine:   vgas.EngineGo,
		Coalesce: vgas.CoalesceConfig{MaxParcels: 16},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Stop()
	var ran atomic.Int64
	done := make(chan struct{})
	target := int64(b.N)
	count := w.Register("count", func(c *runtime.Ctx) {
		if ran.Add(1) == target {
			close(done)
		}
	})
	w.Start()
	lay, err := w.AllocLocal(1, 64, 1)
	if err != nil {
		b.Fatal(err)
	}
	g := lay.BlockAt(0)
	p := w.Proc(0)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		p.Invoke(g, count, nil)
	}
	w.Locality(0).FlushAll()
	<-done
	b.StopTimer()
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "msgs/sec")
}

// F16ReplicatedReads measures the replica-hit read fast path on the
// goroutine engine: a 4 KiB block owned by rank 1 is live-replicated to
// every other rank, so rank 0's blocking reads resolve against its own
// fresh replica — no wire traffic, no owner involvement. With
// Config.Metrics on, the runtime's get-completion percentiles ride along
// as p50_ns/p95_ns/p99_ns; compare ns/op against GoEngineGet to see the
// round trip replication removes.
func F16ReplicatedReads(b *testing.B) {
	w, err := vgas.NewWorld(vgas.Config{
		Ranks: 4, Mode: vgas.AGASNM, Engine: vgas.EngineGo, Metrics: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Stop()
	w.Start()
	lay, err := w.AllocLocal(1, 4096, 1)
	if err != nil {
		b.Fatal(err)
	}
	if err := w.ReplicateLive(lay, 3); err != nil {
		b.Fatal(err)
	}
	g := lay.BlockAt(0)
	p := w.Proc(0)
	buf := make([]byte, 64)
	b.SetBytes(64)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		p.GetWaitInto(g, buf)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "msgs/sec")
	reportLatency(b, w.Stats().Latencies.GetDone)
}

// DESEnginePut is the wall-clock cost of one simulated put round trip on
// the DES engine (event-queue overhead plus protocol handlers; simulated
// time is free).
func DESEnginePut(b *testing.B) { enginePut(b, vgas.EngineDES, false) }

// DESEnginePutMetrics is DESEnginePut with Config.Metrics on; the
// simulated put-completion percentiles ride along as p50_ns/p95_ns/
// p99_ns, and the ns/op delta against DESEnginePut is the enabled-path
// cost.
func DESEnginePutMetrics(b *testing.B) { enginePut(b, vgas.EngineDES, true) }

// DESEngineEvents measures raw event schedule+dispatch cost on the
// 4-ary flat-heap engine.
func DESEngineEvents(b *testing.B) {
	b.ReportAllocs()
	eng := netsim.NewEngine()
	n := 0
	var pump func()
	pump = func() {
		n++
		if n < b.N {
			eng.After(1, pump)
		}
	}
	eng.After(1, pump)
	eng.Run()
	if n < b.N {
		b.Fatal("engine starved")
	}
}

// headline is the benchmark set RunAll executes — the metrics
// BENCH_PR3.json tracks.
var headline = []struct {
	name string
	fn   func(*testing.B)
}{
	{"GoEnginePumpThroughput", GoEnginePump},
	{"GoEnginePutThroughput", GoEnginePut},
	{"GoEngineGetThroughput", GoEngineGet},
	{"GoEnginePutVecThroughput", GoEnginePutVec},
	{"GoEngineGetVecThroughput", GoEngineGetVec},
	{"GoEngineCoalesceThroughput", GoEngineCoalesce},
	{"F16ReplicatedReadsThroughput", F16ReplicatedReads},
	{"DESEnginePutThroughput", DESEnginePut},
	{"DESEngineEventThroughput", DESEngineEvents},
	{"GoEnginePumpMetricsThroughput", GoEnginePumpMetrics},
	{"DESEnginePutMetricsThroughput", DESEnginePutMetrics},
}

// RunAll executes the headline microbenchmarks via testing.Benchmark and
// returns their results.
func RunAll() []Result {
	out := make([]Result, 0, len(headline))
	for _, h := range headline {
		r := testing.Benchmark(h.fn)
		res := Result{
			Name:        h.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
		}
		if v, ok := r.Extra["msgs/sec"]; ok {
			res.MsgsPerSec = v
		}
		res.P50Ns = r.Extra["p50_ns"]
		res.P95Ns = r.Extra["p95_ns"]
		res.P99Ns = r.Extra["p99_ns"]
		out = append(out, res)
	}
	return out
}
