// Package microbench holds the wall-clock microbenchmark bodies for the
// runtime's own fast paths, shared between the `go test -bench` harness
// (bench_test.go) and the vgasbench -bench-json emitter so both report
// the exact same workloads. Each body follows testing.B conventions and
// can be driven by testing.Benchmark from a plain binary.
package microbench

import (
	"sync/atomic"
	"testing"
	"time"

	"nmvgas/internal/netsim"
	"nmvgas/internal/runtime"
	"nmvgas/vgas"
)

// Result is one benchmark outcome in machine-readable form.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// MsgsPerSec is the send→deliver rate where the benchmark measures
	// one (0 elsewhere).
	MsgsPerSec float64 `json:"msgs_per_sec,omitempty"`
	N          int     `json:"n"`
}

// GoEnginePump is the send→deliver pump on the goroutine engine: rank 0
// fires b.N no-continuation parcels at a block on rank 1 and waits for
// the last to execute. It measures the whole fast path — SendParcel,
// source translation, transport delivery, the destination actor's
// mailbox, and action dispatch — as wall-clock msgs/sec and allocs/op.
func GoEnginePump(b *testing.B) {
	w, err := vgas.NewWorld(vgas.Config{Ranks: 2, Mode: vgas.AGASNM, Engine: vgas.EngineGo})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Stop()
	var ran atomic.Int64
	done := make(chan struct{})
	target := int64(b.N)
	count := w.Register("count", func(c *runtime.Ctx) {
		if ran.Add(1) == target {
			close(done)
		}
	})
	w.Start()
	lay, err := w.AllocLocal(1, 64, 1)
	if err != nil {
		b.Fatal(err)
	}
	g := lay.BlockAt(0)
	p := w.Proc(0)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		p.Invoke(g, count, nil)
	}
	<-done
	b.StopTimer()
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "msgs/sec")
}

// enginePut measures one put round trip (send path + completion) per
// iteration on the given engine.
func enginePut(b *testing.B, eng vgas.EngineKind) {
	w, err := vgas.NewWorld(vgas.Config{Ranks: 2, Mode: vgas.AGASNM, Engine: eng})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Stop()
	w.Start()
	lay, err := w.AllocLocal(1, 4096, 1)
	if err != nil {
		b.Fatal(err)
	}
	g := lay.BlockAt(0)
	buf := make([]byte, 64)
	b.SetBytes(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.MustWait(w.Proc(0).Put(g, buf))
	}
}

// GoEnginePut is the wall-clock one-sided put round trip on the
// goroutine engine.
func GoEnginePut(b *testing.B) { enginePut(b, vgas.EngineGo) }

// DESEnginePut is the wall-clock cost of one simulated put round trip on
// the DES engine (event-queue overhead plus protocol handlers; simulated
// time is free).
func DESEnginePut(b *testing.B) { enginePut(b, vgas.EngineDES) }

// DESEngineEvents measures raw event schedule+dispatch cost on the
// 4-ary flat-heap engine.
func DESEngineEvents(b *testing.B) {
	b.ReportAllocs()
	eng := netsim.NewEngine()
	n := 0
	var pump func()
	pump = func() {
		n++
		if n < b.N {
			eng.After(1, pump)
		}
	}
	eng.After(1, pump)
	eng.Run()
	if n < b.N {
		b.Fatal("engine starved")
	}
}

// headline is the benchmark set RunAll executes — the metrics
// BENCH_PR3.json tracks.
var headline = []struct {
	name string
	fn   func(*testing.B)
}{
	{"GoEnginePumpThroughput", GoEnginePump},
	{"GoEnginePutThroughput", GoEnginePut},
	{"DESEnginePutThroughput", DESEnginePut},
	{"DESEngineEventThroughput", DESEngineEvents},
}

// RunAll executes the headline microbenchmarks via testing.Benchmark and
// returns their results.
func RunAll() []Result {
	out := make([]Result, 0, len(headline))
	for _, h := range headline {
		r := testing.Benchmark(h.fn)
		res := Result{
			Name:        h.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
		}
		if v, ok := r.Extra["msgs/sec"]; ok {
			res.MsgsPerSec = v
		}
		out = append(out, res)
	}
	return out
}
