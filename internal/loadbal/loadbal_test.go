package loadbal

import (
	"testing"

	"nmvgas/internal/gas"
	"nmvgas/internal/runtime"
)

func newWorld(t *testing.T, mode runtime.Mode) *runtime.World {
	t.Helper()
	w, err := runtime.NewWorld(runtime.Config{Ranks: 4, Mode: mode, Engine: runtime.EngineDES})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	return w
}

func TestTrackerCountsAccesses(t *testing.T) {
	w := newWorld(t, runtime.AGASNM)
	tr := Attach(w)
	touch := w.Register("touch", func(c *runtime.Ctx) { c.Continue(nil) })
	w.Start()
	lay, err := w.AllocCyclic(0, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		w.MustWait(w.Proc(0).Call(lay.BlockAt(1), touch, nil))
	}
	w.MustWait(w.Proc(0).Put(lay.BlockAt(2), []byte{1}))

	if got := tr.Heat(lay.BlockAt(1).Block()); got != 6 {
		t.Fatalf("heat = %d", got)
	}
	if got := tr.Heat(lay.BlockAt(2).Block()); got != 1 {
		t.Fatalf("put heat = %d", got)
	}
	if tr.LoadOf(lay.HomeOf(1)) < 6 {
		t.Fatalf("rank load = %d", tr.LoadOf(lay.HomeOf(1)))
	}
	tr.Reset()
	if tr.Heat(lay.BlockAt(1).Block()) != 0 {
		t.Fatal("Reset did not clear heat")
	}
}

func TestPlanSpreadsHotBlocks(t *testing.T) {
	w := newWorld(t, runtime.AGASNM)
	w.Start()
	// All 8 blocks on rank 0; make them uniformly hot: a greedy plan
	// must spread them 2-2-2-2.
	lay, err := w.AllocLocal(0, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	heat := make(map[gas.BlockID]uint64)
	for d := uint32(0); d < 8; d++ {
		heat[lay.BlockAt(d).Block()] = 100
	}
	moves := Plan(w, lay, heat)
	if len(moves) != 6 {
		t.Fatalf("planned %d moves, want 6 (keep 2 of 8 local)", len(moves))
	}
	dest := map[int]int{0: 2}
	for _, m := range moves {
		dest[m.To]++
	}
	for r := 0; r < 4; r++ {
		if dest[r] != 2 {
			t.Fatalf("rank %d assigned %d blocks: %v", r, dest[r], dest)
		}
	}
}

func TestPlanLeavesColdLayoutAlone(t *testing.T) {
	w := newWorld(t, runtime.AGASNM)
	w.Start()
	lay, err := w.AllocCyclic(0, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	moves := Plan(w, lay, map[gas.BlockID]uint64{})
	if len(moves) != 0 {
		t.Fatalf("zero-heat plan moved %d blocks", len(moves))
	}
}

func TestRebalanceEndToEnd(t *testing.T) {
	for _, mode := range []runtime.Mode{runtime.AGASSW, runtime.AGASNM} {
		w := newWorld(t, mode)
		tr := Attach(w)
		bump := w.Register("bump", func(c *runtime.Ctx) {
			d := c.Local(c.P.Target)
			d[0]++
			c.Continue(nil)
		})
		w.Start()
		lay, err := w.AllocLocal(0, 64, 8)
		if err != nil {
			t.Fatal(err)
		}
		for d := uint32(0); d < 8; d++ {
			for i := 0; i < 10; i++ {
				w.MustWait(w.Proc(1).Call(lay.BlockAt(d), bump, nil))
			}
		}
		moved, err := Rebalance(w, 0, lay, tr)
		if err != nil {
			t.Fatal(err)
		}
		if moved == 0 {
			t.Fatal("rebalance moved nothing despite full imbalance")
		}
		// Data still correct everywhere after moving.
		for d := uint32(0); d < 8; d++ {
			got := w.MustWait(w.Proc(2).Get(lay.BlockAt(d), 1))
			if got[0] != 10 {
				t.Fatalf("%s: block %d data = %d after rebalance", mode, d, got[0])
			}
		}
		// Residency matches the plan's effect: no rank holds more than
		// 2 of the data blocks plus its infrastructure block.
		base := lay.Base.Block()
		for r := 0; r < 4; r++ {
			n := 0
			for d := uint32(0); d < 8; d++ {
				if _, ok := w.Locality(r).Store().Get(base + gas.BlockID(d)); ok {
					n++
				}
			}
			if n > 2 {
				t.Fatalf("%s: rank %d holds %d blocks after rebalance", mode, r, n)
			}
		}
	}
}

func TestConsolidate(t *testing.T) {
	w := newWorld(t, runtime.AGASNM)
	w.Start()
	lay, err := w.AllocCyclic(0, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := Consolidate(w, 0, lay, 3); err != nil {
		t.Fatal(err)
	}
	for d := uint32(0); d < 8; d++ {
		if _, ok := w.Locality(3).Store().Get(lay.BlockAt(d).Block()); !ok {
			t.Fatalf("block %d not consolidated to rank 3", d)
		}
	}
}

func TestImbalanceMetric(t *testing.T) {
	if Imbalance(nil) != 1 {
		t.Fatal("empty imbalance")
	}
	if Imbalance([]uint64{0, 0}) != 1 {
		t.Fatal("zero imbalance")
	}
	if got := Imbalance([]uint64{10, 10, 10, 10}); got != 1 {
		t.Fatalf("even imbalance = %v", got)
	}
	if got := Imbalance([]uint64{40, 0, 0, 0}); got != 4 {
		t.Fatalf("skewed imbalance = %v", got)
	}
}
