package loadbal

import (
	"math/rand"
	"testing"

	"nmvgas/internal/gas"
	"nmvgas/internal/runtime"
)

func newWorld(t *testing.T, mode runtime.Mode) *runtime.World {
	t.Helper()
	w, err := runtime.NewWorld(runtime.Config{Ranks: 4, Mode: mode, Engine: runtime.EngineDES,
		Heat: runtime.HeatConfig{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	return w
}

func TestHeatMapCountsAccesses(t *testing.T) {
	w := newWorld(t, runtime.AGASNM)
	touch := w.Register("touch", func(c *runtime.Ctx) { c.Continue(nil) })
	w.Start()
	lay, err := w.AllocCyclic(0, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		w.MustWait(w.Proc(0).Call(lay.BlockAt(1), touch, nil))
	}
	w.MustWait(w.Proc(0).Put(lay.BlockAt(2), []byte{1}))

	heat := HeatMap(w, lay)
	if got := heat[lay.BlockAt(1).Block()]; got != 6 {
		t.Fatalf("heat = %d", got)
	}
	if got := heat[lay.BlockAt(2).Block()]; got != 1 {
		t.Fatalf("put heat = %d", got)
	}
	loads := w.HeatLoads()
	if loads[lay.HomeOf(1)] < 6 {
		t.Fatalf("rank load = %d", loads[lay.HomeOf(1)])
	}
	w.HeatEpoch()
	if got := HeatMap(w, lay); len(got) != 0 {
		t.Fatalf("epoch reset did not clear heat: %v", got)
	}
}

func TestPlanSpreadsHotBlocks(t *testing.T) {
	w := newWorld(t, runtime.AGASNM)
	w.Start()
	// All 8 blocks on rank 0; make them uniformly hot: a greedy plan
	// must spread them 2-2-2-2.
	lay, err := w.AllocLocal(0, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	heat := make(map[gas.BlockID]uint64)
	for d := uint32(0); d < 8; d++ {
		heat[lay.BlockAt(d).Block()] = 100
	}
	moves := Plan(w, lay, heat)
	if len(moves) != 6 {
		t.Fatalf("planned %d moves, want 6 (keep 2 of 8 local)", len(moves))
	}
	dest := map[int]int{0: 2}
	for _, m := range moves {
		dest[m.To]++
	}
	for r := 0; r < 4; r++ {
		if dest[r] != 2 {
			t.Fatalf("rank %d assigned %d blocks: %v", r, dest[r], dest)
		}
	}
}

func TestPlanLeavesColdLayoutAlone(t *testing.T) {
	w := newWorld(t, runtime.AGASNM)
	w.Start()
	lay, err := w.AllocCyclic(0, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	moves := Plan(w, lay, map[gas.BlockID]uint64{})
	if len(moves) != 0 {
		t.Fatalf("zero-heat plan moved %d blocks", len(moves))
	}
}

// TestPlanMatchesLinearReference pins the heap-based Plan to the original
// linear least-loaded scan on randomized heat: same moves, same order.
func TestPlanMatchesLinearReference(t *testing.T) {
	w := newWorld(t, runtime.AGASNM)
	w.Start()
	lay, err := w.AllocCyclic(0, 64, 32)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		heat := make(map[gas.BlockID]uint64)
		for d := uint32(0); d < lay.NBlocks; d++ {
			if rng.Intn(3) > 0 {
				heat[lay.BlockAt(d).Block()] = uint64(rng.Intn(1000))
			}
		}
		got := Plan(w, lay, heat)
		want := planLinear(w, lay, heat)
		if len(got) != len(want) {
			t.Fatalf("trial %d: heap plan %d moves, linear %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d move %d: heap %+v, linear %+v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestRebalanceEndToEnd(t *testing.T) {
	for _, mode := range []runtime.Mode{runtime.AGASSW, runtime.AGASNM} {
		w := newWorld(t, mode)
		bump := w.Register("bump", func(c *runtime.Ctx) {
			d := c.Local(c.P.Target)
			d[0]++
			c.Continue(nil)
		})
		w.Start()
		lay, err := w.AllocLocal(0, 64, 8)
		if err != nil {
			t.Fatal(err)
		}
		for d := uint32(0); d < 8; d++ {
			for i := 0; i < 10; i++ {
				w.MustWait(w.Proc(1).Call(lay.BlockAt(d), bump, nil))
			}
		}
		moved, err := Rebalance(w, 0, lay)
		if err != nil {
			t.Fatal(err)
		}
		if moved == 0 {
			t.Fatal("rebalance moved nothing despite full imbalance")
		}
		// Data still correct everywhere after moving.
		for d := uint32(0); d < 8; d++ {
			got := w.MustWait(w.Proc(2).Get(lay.BlockAt(d), 1))
			if got[0] != 10 {
				t.Fatalf("%s: block %d data = %d after rebalance", mode, d, got[0])
			}
		}
		// Residency matches the plan's effect: no rank holds more than
		// 2 of the data blocks plus its infrastructure block.
		base := lay.Base.Block()
		for r := 0; r < 4; r++ {
			n := 0
			for d := uint32(0); d < 8; d++ {
				if _, ok := w.Locality(r).Store().Get(base + gas.BlockID(d)); ok {
					n++
				}
			}
			if n > 2 {
				t.Fatalf("%s: rank %d holds %d blocks after rebalance", mode, r, n)
			}
		}
	}
}

// TestRebalanceWithoutHeatErrors: Rebalance against a world that never
// enabled heat tracking must fail loudly, not silently plan nothing.
func TestRebalanceWithoutHeatErrors(t *testing.T) {
	w, err := runtime.NewWorld(runtime.Config{Ranks: 2, Mode: runtime.AGASNM, Engine: runtime.EngineDES})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	w.Start()
	lay, err := w.AllocCyclic(0, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Rebalance(w, 0, lay); err == nil {
		t.Fatal("rebalance without Config.Heat succeeded")
	}
}

// TestApplyWaitCountsOnlyRealMoves pins the Rebalance fix: a refused
// migration (PGAS pins every block) must not be counted as moved, and
// must surface as an error.
func TestApplyWaitCountsOnlyRealMoves(t *testing.T) {
	w, err := runtime.NewWorld(runtime.Config{Ranks: 4, Mode: runtime.PGAS, Engine: runtime.EngineDES})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	w.Start()
	lay, err := w.AllocLocal(0, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	moves := []Move{
		{Block: lay.BlockAt(0), To: 1},
		{Block: lay.BlockAt(1), To: 2},
	}
	moved, err := ApplyWait(w, 0, moves)
	if moved != 0 {
		t.Fatalf("PGAS refused both moves but %d reported moved", moved)
	}
	if err == nil {
		t.Fatal("refused moves surfaced no error")
	}
}

func TestConsolidate(t *testing.T) {
	w := newWorld(t, runtime.AGASNM)
	w.Start()
	lay, err := w.AllocCyclic(0, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := Consolidate(w, 0, lay, 3); err != nil {
		t.Fatal(err)
	}
	for d := uint32(0); d < 8; d++ {
		if _, ok := w.Locality(3).Store().Get(lay.BlockAt(d).Block()); !ok {
			t.Fatalf("block %d not consolidated to rank 3", d)
		}
	}
}

func TestImbalanceMetric(t *testing.T) {
	if Imbalance(nil) != 1 {
		t.Fatal("empty imbalance")
	}
	if Imbalance([]uint64{0, 0}) != 1 {
		t.Fatal("zero imbalance")
	}
	if got := Imbalance([]uint64{10, 10, 10, 10}); got != 1 {
		t.Fatalf("even imbalance = %v", got)
	}
	if got := Imbalance([]uint64{40, 0, 0, 0}); got != 4 {
		t.Fatalf("skewed imbalance = %v", got)
	}
}
