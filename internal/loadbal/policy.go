package loadbal

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"nmvgas/internal/gas"
	"nmvgas/internal/runtime"
)

// PolicyConfig tunes the closed-loop controller. The zero value of every
// field gets a sensible default from NewPolicy; Layout is required.
type PolicyConfig struct {
	// Layout is the allocation under management.
	Layout gas.Layout
	// From is the rank issuing migrations (the controller's seat).
	From int
	// MoveBudget caps migrations per epoch (default 4): rebalancing is
	// supposed to converge over a few epochs, not thrash the directory
	// in one.
	MoveBudget int
	// MinSamples is the minimum sampled accesses in an epoch before the
	// controller acts at all (default 64): idle or warming systems give
	// too noisy a signal to move data on.
	MinSamples uint64
	// HotShare is the fraction of the epoch's sampled accesses a block
	// must attract to be considered hot (default 0.02).
	HotShare float64
	// Dominance is the hysteresis ratio for migration (default 2.0): a
	// remote rank must drive at least Dominance× the traffic the
	// current owner drives locally before the block moves to it. At 1.0
	// any remote majority wins; higher values demand a clearer signal.
	Dominance float64
	// Cooldown is the number of epochs a freshly moved block is immune
	// from further moves (default 2) — the second anti-thrash guard.
	Cooldown int
	// Replicas enables adaptive replication when > 0: read-dominated
	// hot blocks with at least MinReaders distinct readers get a live
	// replica set of this size (World.ReplicateLive), torn down again
	// when the block cools or turns write-heavy.
	Replicas int
	// ReadShare is the read fraction above which a hot block counts as
	// read-dominated (default 0.9).
	ReadShare float64
	// MinReaders is the distinct-reader floor for replication (default
	// 3): replicating for a single consumer is strictly worse than
	// migrating to it.
	MinReaders int
}

func (c PolicyConfig) withDefaults() PolicyConfig {
	if c.MoveBudget <= 0 {
		c.MoveBudget = 4
	}
	if c.MinSamples == 0 {
		c.MinSamples = 64
	}
	if c.HotShare <= 0 {
		c.HotShare = 0.02
	}
	if c.Dominance <= 0 {
		c.Dominance = 2.0
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2
	}
	if c.ReadShare <= 0 {
		c.ReadShare = 0.9
	}
	if c.MinReaders <= 0 {
		c.MinReaders = 3
	}
	return c
}

// PolicyStats accumulates controller activity across epochs.
type PolicyStats struct {
	Epochs       int64
	Samples      uint64 // sampled accesses consumed
	IdleEpochs   int64  // epochs skipped below MinSamples
	Moves        int64  // migrations completed (MigrateOK only)
	MoveFailures int64  // migrations refused or failed
	Deferred     int64  // hot blocks deferred by budget or cooldown
	Replications int64  // replica sets created
	Teardowns    int64  // replica sets removed
}

// Report is one epoch's outcome.
type Report struct {
	Samples      uint64   // sampled accesses this epoch
	Loads        []uint64 // per-rank sampled serving load
	Imbalance    float64  // max/mean of Loads
	Moves        int      // blocks migrated this epoch
	MoveFailures int
	Replications int
	Teardowns    int
	Acted        bool // false when the epoch was skipped (below MinSamples)
}

// Policy is the epoch-driven closed-loop controller: each Step consumes
// the heat tracker's current epoch (merged across every rank's sketch),
// migrates hot blocks toward their dominant accessor — under a move
// budget and per-block cooldown so a shifting hotspot converges instead
// of thrashing — and, when configured, installs live replica sets for
// read-dominated hot blocks and tears them down once they cool.
type Policy struct {
	w   *runtime.World
	cfg PolicyConfig

	// mu guards the controller state below. Driver-stepped policies never
	// contend; pulse-driven ones are stepped from tick context while the
	// driver reads Stats/LastReport, and async move completions land from
	// engine context.
	mu   sync.Mutex
	cool map[gas.BlockID]int // block -> epochs of move immunity left
	repl map[gas.BlockID]bool
	st   PolicyStats
	last Report
}

// NewPolicy validates the world against the config: heat tracking must
// be on and the address space must support migration.
func NewPolicy(w *runtime.World, cfg PolicyConfig) (*Policy, error) {
	if !w.HeatEnabled() {
		return nil, errors.New("loadbal: policy needs Config.Heat.Enabled")
	}
	if !w.Caps().Migration {
		return nil, fmt.Errorf("loadbal: address space %q cannot migrate", w.Caps().Name)
	}
	if cfg.Layout.NBlocks == 0 {
		return nil, errors.New("loadbal: policy needs a layout")
	}
	cfg = cfg.withDefaults()
	if cfg.Replicas > 0 && !w.Caps().Replication {
		return nil, fmt.Errorf("loadbal: address space %q cannot replicate", w.Caps().Name)
	}
	return &Policy{
		w:    w,
		cfg:  cfg,
		cool: make(map[gas.BlockID]int),
		repl: make(map[gas.BlockID]bool),
	}, nil
}

// Stats returns the accumulated controller counters.
func (p *Policy) Stats() PolicyStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.st
}

// LastReport returns the most recent epoch's report (zero before the
// first Step/StepAsync). Pulse-driven runs read it where driver-stepped
// runs would read Step's return value.
func (p *Policy) LastReport() Report {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.last
}

// blockAgg is one block's merged epoch heat.
type blockAgg struct {
	b        gas.BlockID
	total    uint64
	reads    uint64
	bySrc    map[int]uint64
	readSrcs map[int]bool // ranks that read the block (distinct readers)
}

// blockLayout carves the single-block layout addressing block d of lay —
// DistLocal pins HomeOf(0) to the block's real home, so the per-block
// replicate/unreplicate calls resolve the same owner the full layout
// would.
func blockLayout(lay gas.Layout, d uint32) gas.Layout {
	return gas.Layout{Base: lay.BlockAt(d), BSize: lay.BSize, NBlocks: 1, Ranks: lay.Ranks, Dist: gas.DistLocal}
}

// Step runs one control epoch: consume and reset the heat window, act
// on it, and wait for every issued migration to complete. Call it from
// the driver with the workload quiesced (between waves); under
// EngineDES that makes the whole loop deterministic.
func (p *Policy) Step() (Report, error) {
	rep, moves, errs := p.plan()
	moved, err := ApplyWait(p.w, p.cfg.From, moves)
	if err != nil {
		errs = append(errs, err)
	}
	rep.Moves = moved
	rep.MoveFailures = len(moves) - moved
	p.mu.Lock()
	p.st.Moves += int64(moved)
	p.st.MoveFailures += int64(len(moves) - moved)
	p.last = rep
	p.mu.Unlock()
	return rep, errors.Join(errs...)
}

// StepAsync is Step without the wait: migrations are issued and their
// outcomes are counted into Stats as each completes (MigrateOK
// increments Moves, anything else MoveFailures). It never calls
// World.Wait, so it is legal from pulse-tick context, where re-entering
// the engine is not; Report.Moves is the issued count.
func (p *Policy) StepAsync() (Report, error) {
	rep, moves, errs := p.plan()
	for _, fut := range Apply(p.w, p.cfg.From, moves) {
		fut.OnFire(func(v []byte) {
			p.mu.Lock()
			if runtime.MigrateStatus(v) == runtime.MigrateOK {
				p.st.Moves++
			} else {
				p.st.MoveFailures++
			}
			p.mu.Unlock()
		})
	}
	rep.Moves = len(moves)
	p.mu.Lock()
	p.last = rep
	p.mu.Unlock()
	return rep, errors.Join(errs...)
}

// AttachPulse registers the policy as a runtime-pulse client running one
// StepAsync epoch every `every` pulses (minimum 1): the in-runtime
// replacement for the driver epoch loop, with the cadence coming from
// Config.Pulse.Period instead of workload structure. Outcomes accumulate
// in Stats and LastReport.
func (p *Policy) AttachPulse(every uint64) {
	if every < 1 {
		every = 1
	}
	p.w.OnPulse("loadbal.policy", func(pi runtime.PulseInfo) {
		if pi.Seq%every != 0 {
			return
		}
		_, _ = p.StepAsync()
	})
}

// plan consumes one heat epoch and decides what to do: replica installs
// and teardowns execute inline (they are synchronous driver APIs), and
// the migration list is returned for the caller to apply synchronously
// (Step) or asynchronously (StepAsync).
func (p *Policy) plan() (Report, []Move, []error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	loads, samples := p.w.HeatEpoch()
	var rep Report
	rep.Loads = loads
	rep.Imbalance = Imbalance(loads)
	for _, s := range samples {
		rep.Samples += s.Count - s.Err
	}
	p.st.Epochs++
	p.st.Samples += rep.Samples

	// Cooldowns tick at the END of each epoch (tickCooldowns), after the
	// action checks, so Cooldown=N really grants N full epochs of
	// immunity to a freshly moved block.
	if rep.Samples < p.cfg.MinSamples {
		p.st.IdleEpochs++
		p.tickCooldowns()
		return rep, nil, nil
	}
	rep.Acted = true

	// Merge the per-rank sketch entries into per-block aggregates,
	// keeping only blocks of the managed layout. Guaranteed counts
	// (Count-Err) keep eviction noise from manufacturing hotspots.
	lay := p.cfg.Layout
	base := lay.Base.Block()
	agg := make(map[gas.BlockID]*blockAgg)
	for _, s := range samples {
		if s.Block < base || s.Block >= base+gas.BlockID(lay.NBlocks) {
			continue
		}
		n := s.Count - s.Err
		if n == 0 {
			continue
		}
		a := agg[s.Block]
		if a == nil {
			a = &blockAgg{b: s.Block, bySrc: make(map[int]uint64), readSrcs: make(map[int]bool)}
			agg[s.Block] = a
		}
		a.total += n
		a.bySrc[s.Src] += n
		if s.Read {
			a.reads += n
			a.readSrcs[s.Src] = true
		}
	}
	hot := make([]*blockAgg, 0, len(agg))
	for _, a := range agg {
		hot = append(hot, a)
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].total != hot[j].total {
			return hot[i].total > hot[j].total
		}
		return hot[i].b < hot[j].b
	})

	hotFloor := uint64(p.cfg.HotShare * float64(rep.Samples))
	var moves []Move
	var errs []error
	for _, a := range hot {
		if a.total < hotFloor {
			break // sorted: everything after is colder
		}
		d := uint32(a.b - base)
		owner := p.owner(d)
		readFrac := float64(a.reads) / float64(a.total)

		if p.repl[a.b] {
			// Already replicated by us: tear the set down if the block
			// turned write-heavy (coherence fan-out now outweighs local
			// reads). Cold blocks are handled after the loop.
			if readFrac < p.cfg.ReadShare {
				p.teardown(lay, d, &rep, &errs)
			}
			continue
		}

		if p.cfg.Replicas > 0 && readFrac >= p.cfg.ReadShare && len(a.readSrcs) >= p.cfg.MinReaders {
			// Read-dominated with a spread audience: replication serves
			// every reader locally, where migration could satisfy one.
			if err := p.w.ReplicateLive(blockLayout(lay, d), p.cfg.Replicas); err != nil {
				errs = append(errs, fmt.Errorf("replicate block %d: %w", a.b, err))
			} else {
				p.repl[a.b] = true
				p.st.Replications++
				rep.Replications++
			}
			continue
		}

		// Migration: move toward the dominant accessor, with hysteresis
		// against the owner's own local traffic.
		dom, domN := owner, uint64(0)
		for src, n := range a.bySrc {
			if n > domN || (n == domN && src < dom) {
				dom, domN = src, n
			}
		}
		if dom == owner {
			continue
		}
		if float64(domN) < p.cfg.Dominance*float64(a.bySrc[owner]) {
			continue
		}
		if p.cool[a.b] > 0 {
			p.st.Deferred++
			continue
		}
		if len(moves) >= p.cfg.MoveBudget {
			p.st.Deferred++
			continue
		}
		moves = append(moves, Move{Block: lay.BlockAt(d), To: dom})
	}

	// Tear down replica sets whose blocks went cold: they no longer pay
	// for their coherence footprint.
	for b := range p.repl {
		a := agg[b]
		if a == nil || a.total < hotFloor {
			p.teardown(lay, uint32(b-base), &rep, &errs)
		}
	}

	// Cooldown is charged at issue time — for the async path the outcome
	// is not known yet, and re-proposing a move mid-flight would be the
	// thrash the cooldown exists to prevent.
	p.tickCooldowns()
	for _, mv := range moves {
		p.cool[mv.Block.Block()] = p.cfg.Cooldown
	}
	return rep, moves, errs
}

func (p *Policy) tickCooldowns() {
	for b, c := range p.cool {
		if c <= 1 {
			delete(p.cool, b)
		} else {
			p.cool[b] = c - 1
		}
	}
}

// owner resolves block d's current master through the home's directory.
func (p *Policy) owner(d uint32) int {
	lay := p.cfg.Layout
	home := lay.HomeOf(d)
	if dir := p.w.Locality(home).Directory(); dir != nil {
		return dir.Resolve(lay.BlockAt(d).Block(), home)
	}
	return home
}

func (p *Policy) teardown(lay gas.Layout, d uint32, rep *Report, errs *[]error) {
	b := lay.BlockAt(d).Block()
	if err := p.w.Unreplicate(blockLayout(lay, d)); err != nil {
		*errs = append(*errs, fmt.Errorf("unreplicate block %d: %w", b, err))
		return
	}
	delete(p.repl, b)
	p.st.Teardowns++
	rep.Teardowns++
}
