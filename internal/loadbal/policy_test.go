package loadbal

import (
	"testing"

	"nmvgas/internal/netsim"
	"nmvgas/internal/runtime"
)

func TestPolicyMigratesTowardDominantAccessor(t *testing.T) {
	w := newWorld(t, runtime.AGASNM)
	w.Start()
	lay, err := w.AllocLocal(0, 64, 4) // all blocks on rank 0
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPolicy(w, PolicyConfig{Layout: lay, MinSamples: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 2 hammers block 1; rank 0 (the owner) touches it a little —
	// not enough to defeat 2× dominance.
	for i := 0; i < 40; i++ {
		w.MustWait(w.Proc(2).Put(lay.BlockAt(1), []byte{1}))
	}
	for i := 0; i < 5; i++ {
		w.MustWait(w.Proc(0).Put(lay.BlockAt(1), []byte{1}))
	}
	rep, err := p.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Acted || rep.Moves != 1 {
		t.Fatalf("expected 1 move, got %+v", rep)
	}
	if _, ok := w.Locality(2).Store().Get(lay.BlockAt(1).Block()); !ok {
		t.Fatal("hot block did not land at its dominant accessor")
	}
	if st := p.Stats(); st.Moves != 1 || st.Epochs != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPolicyHysteresisKeepsOwnerLocalBlocks(t *testing.T) {
	w := newWorld(t, runtime.AGASNM)
	w.Start()
	lay, err := w.AllocLocal(0, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPolicy(w, PolicyConfig{Layout: lay, MinSamples: 8, Dominance: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Remote traffic exists but the owner drives a comparable share:
	// 2× dominance is not met, the block stays put.
	for i := 0; i < 20; i++ {
		w.MustWait(w.Proc(1).Put(lay.BlockAt(0), []byte{1}))
	}
	for i := 0; i < 15; i++ {
		w.MustWait(w.Proc(0).Put(lay.BlockAt(0), []byte{1}))
	}
	rep, err := p.Step()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Moves != 0 {
		t.Fatalf("hysteresis failed: %d moves for a 20:15 split", rep.Moves)
	}
}

func TestPolicyBudgetAndCooldown(t *testing.T) {
	w := newWorld(t, runtime.AGASNM)
	w.Start()
	lay, err := w.AllocLocal(0, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPolicy(w, PolicyConfig{Layout: lay, MinSamples: 8, MoveBudget: 2, Cooldown: 2})
	if err != nil {
		t.Fatal(err)
	}
	hammer := func() {
		for d := uint32(0); d < 8; d++ {
			for i := 0; i < 10; i++ {
				w.MustWait(w.Proc(1+int(d)%3).Put(lay.BlockAt(d), []byte{1}))
			}
		}
	}
	hammer()
	rep, err := p.Step()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Moves != 2 {
		t.Fatalf("budget 2 but %d moves", rep.Moves)
	}
	if p.Stats().Deferred == 0 {
		t.Fatal("over-budget hot blocks not recorded as deferred")
	}
	// The two moved blocks are on cooldown: hammering them from a new
	// rank must not bounce them for Cooldown epochs.
	moved := make(map[uint32]bool)
	for d := uint32(0); d < 8; d++ {
		if _, ok := w.Locality(lay.HomeOf(d)).Store().Get(lay.BlockAt(d).Block()); !ok {
			moved[d] = true
		}
	}
	var bounce uint32
	for d := range moved {
		bounce = d
		break
	}
	for epoch := 0; epoch < 2; epoch++ {
		for i := 0; i < 40; i++ {
			w.MustWait(w.Proc(3).Put(lay.BlockAt(bounce), []byte{1}))
		}
		rep, err = p.Step()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := w.Locality(3).Store().Get(lay.BlockAt(bounce).Block()); ok {
			t.Fatalf("cooldown violated: block bounced %d epoch(s) after moving", epoch+1)
		}
	}
	// Cooldown expired: now the move is allowed.
	for i := 0; i < 40; i++ {
		w.MustWait(w.Proc(3).Put(lay.BlockAt(bounce), []byte{1}))
	}
	if _, err = p.Step(); err != nil {
		t.Fatal(err)
	}
	if _, ok := w.Locality(3).Store().Get(lay.BlockAt(bounce).Block()); !ok {
		t.Fatal("block never moved after cooldown expired")
	}
}

func TestPolicyAdaptiveReplication(t *testing.T) {
	w := newWorld(t, runtime.AGASNM)
	w.Start()
	lay, err := w.AllocLocal(0, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	w.MustWait(w.Proc(0).Put(lay.BlockAt(1), []byte{7}))
	p, err := NewPolicy(w, PolicyConfig{Layout: lay, MinSamples: 8, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	w.HeatEpoch() // discard the setup put

	// Three ranks read block 1: read-dominated, spread audience →
	// replicate, don't migrate.
	readAll := func() {
		for i := 0; i < 10; i++ {
			for _, r := range []int{1, 2, 3} {
				w.MustWait(w.Proc(r).Get(lay.BlockAt(1), 1))
			}
		}
	}
	readAll()
	rep, err := p.Step()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replications != 1 || rep.Moves != 0 {
		t.Fatalf("expected 1 replication and no moves, got %+v", rep)
	}
	if w.ReplicatedBlocks() != 1 {
		t.Fatalf("replica set not installed: %d", w.ReplicatedBlocks())
	}
	// Replica-hit reads now count as heat at the holders, and the block
	// stays replicated while read traffic continues.
	readAll()
	if rep, err = p.Step(); err != nil {
		t.Fatal(err)
	}
	if rep.Teardowns != 0 || w.ReplicatedBlocks() != 1 {
		t.Fatalf("replicated block torn down under live read traffic: %+v", rep)
	}
	if w.Stats().ReplicaReads == 0 {
		t.Fatal("no reads served by replicas after replication")
	}

	// The block goes cold (other blocks absorb the traffic): the next
	// acted epoch tears the set down.
	for i := 0; i < 30; i++ {
		w.MustWait(w.Proc(0).Put(lay.BlockAt(2), []byte{1}))
	}
	if rep, err = p.Step(); err != nil {
		t.Fatal(err)
	}
	if rep.Teardowns != 1 || w.ReplicatedBlocks() != 0 {
		t.Fatalf("cold replicated block not torn down: %+v, %d sets", rep, w.ReplicatedBlocks())
	}
}

func TestPolicyIdleEpochSkips(t *testing.T) {
	w := newWorld(t, runtime.AGASNM)
	w.Start()
	lay, err := w.AllocLocal(0, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPolicy(w, PolicyConfig{Layout: lay})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Step()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Acted || rep.Moves != 0 {
		t.Fatalf("idle epoch acted: %+v", rep)
	}
	if p.Stats().IdleEpochs != 1 {
		t.Fatalf("stats %+v", p.Stats())
	}
}

func TestPolicyRejectsUnsuitableWorlds(t *testing.T) {
	// No heat tracker.
	w1, err := runtime.NewWorld(runtime.Config{Ranks: 2, Mode: runtime.AGASNM, Engine: runtime.EngineDES})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w1.Stop)
	w1.Start()
	lay1, err := w1.AllocCyclic(0, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPolicy(w1, PolicyConfig{Layout: lay1}); err == nil {
		t.Fatal("policy accepted a world without heat tracking")
	}
	// Static address space.
	w2, err := runtime.NewWorld(runtime.Config{Ranks: 2, Mode: runtime.PGAS, Engine: runtime.EngineDES,
		Heat: runtime.HeatConfig{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w2.Stop)
	w2.Start()
	lay2, err := w2.AllocCyclic(0, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPolicy(w2, PolicyConfig{Layout: lay2}); err == nil {
		t.Fatal("policy accepted a static address space")
	}
}

// TestPolicyPulseDriven runs the same dominant-accessor scenario with no
// driver epoch loop at all: the policy is attached to the runtime pulse
// and must act on its own cadence while the workload merely drains.
func TestPolicyPulseDriven(t *testing.T) {
	w, err := runtime.NewWorld(runtime.Config{
		Ranks: 4, Mode: runtime.AGASNM, Engine: runtime.EngineDES,
		Heat:  runtime.HeatConfig{Enabled: true},
		Pulse: runtime.PulseConfig{Enabled: true, Period: 200 * netsim.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	w.Start()
	lay, err := w.AllocLocal(0, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPolicy(w, PolicyConfig{Layout: lay, MinSamples: 8})
	if err != nil {
		t.Fatal(err)
	}
	p.AttachPulse(1)
	// Rank 2 hammers block 1; no Step/StepAsync call appears anywhere in
	// this test — only pulse ticks may run the policy.
	for round := 0; round < 20 && p.Stats().Moves == 0; round++ {
		for i := 0; i < 40; i++ {
			w.MustWait(w.Proc(2).Put(lay.BlockAt(1), []byte{1}))
		}
		w.Drain()
	}
	if st := p.Stats(); st.Moves == 0 {
		t.Fatalf("pulse-driven policy never moved the hot block: %+v", st)
	}
	w.Drain()
	if _, ok := w.Locality(2).Store().Get(lay.BlockAt(1).Block()); !ok {
		t.Fatal("hot block did not land at its dominant accessor")
	}
	if st := p.Stats(); st.Epochs == 0 {
		t.Fatalf("no pulse epoch recorded: %+v", st)
	}
}
