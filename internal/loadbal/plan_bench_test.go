package loadbal

import (
	"math/rand"
	"testing"

	"nmvgas/internal/gas"
	"nmvgas/internal/runtime"
)

// The satellite microbench: Plan's least-loaded lookup at 4096
// localities, indexed min-heap vs the original linear scan. The heap
// turns the per-block O(R) scan into O(log R); at 4096 ranks and 2
// blocks per rank the linear reference does ~33M load comparisons per
// plan where the heap does ~100k.
func benchPlan(b *testing.B, ranks int, plan func(*runtime.World, gas.Layout, map[gas.BlockID]uint64) []Move) {
	w, err := runtime.NewWorld(runtime.Config{Ranks: ranks, Mode: runtime.AGASNM, Engine: runtime.EngineDES})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Stop()
	w.Start()
	lay, err := w.AllocCyclic(0, 64, uint32(2*ranks))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	heat := make(map[gas.BlockID]uint64, lay.NBlocks)
	for d := uint32(0); d < lay.NBlocks; d++ {
		heat[lay.BlockAt(d).Block()] = uint64(rng.Intn(10000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan(w, lay, heat)
	}
}

func BenchmarkPlanHeap4096(b *testing.B)   { benchPlan(b, 4096, Plan) }
func BenchmarkPlanLinear4096(b *testing.B) { benchPlan(b, 4096, planLinear) }
