// Package loadbal implements migration-based load balancing: block heat
// read from the runtime's sampled tracker (Config.Heat), a greedy
// rebalancer that turns observed imbalance into block migrations, and an
// epoch-driven closed-loop Policy (policy.go) that migrates hot blocks
// toward their dominant accessor and adaptively replicates read-hot
// ones. This is the payoff side of the paper's argument — migration only
// matters if a policy can exploit it — and only the AGAS modes can apply
// its plans.
package loadbal

import (
	"errors"
	"fmt"
	"sort"

	"nmvgas/internal/gas"
	"nmvgas/internal/runtime"
)

// HeatMap aggregates the world's current heat samples into per-block
// guaranteed counts for the blocks of one layout. The sketch's
// space-saving bound makes Count-Err a floor on the true sampled
// frequency; using the floor keeps the planner from chasing blocks whose
// apparent heat is eviction noise. Returns nil when heat tracking is off.
func HeatMap(w *runtime.World, lay gas.Layout) map[gas.BlockID]uint64 {
	samples := w.HeatSamples()
	if samples == nil {
		return nil
	}
	base := lay.Base.Block()
	heat := make(map[gas.BlockID]uint64)
	for _, s := range samples {
		if s.Block < base || s.Block >= base+gas.BlockID(lay.NBlocks) {
			continue
		}
		heat[s.Block] += s.Count - s.Err
	}
	return heat
}

// Move is one planned migration.
type Move struct {
	Block gas.GVA
	To    int
}

// blockLoad pairs a block of a layout with its heat and current owner.
type blockLoad struct {
	d     uint32
	gva   gas.GVA
	heat  uint64
	owner int
}

// blocksByHeat lists a layout's blocks with their resolved owners,
// hottest first (ties by block index, so plans are deterministic for a
// given heat snapshot).
func blocksByHeat(w *runtime.World, lay gas.Layout, heat map[gas.BlockID]uint64) []blockLoad {
	blocks := make([]blockLoad, 0, lay.NBlocks)
	for d := uint32(0); d < lay.NBlocks; d++ {
		g := lay.BlockAt(d)
		b := g.Block()
		home := lay.HomeOf(d)
		owner := home
		if dir := w.Locality(home).Directory(); dir != nil {
			owner = dir.Resolve(b, home)
		}
		blocks = append(blocks, blockLoad{d: d, gva: g, heat: heat[b], owner: owner})
	}
	sort.Slice(blocks, func(i, j int) bool {
		if blocks[i].heat != blocks[j].heat {
			return blocks[i].heat > blocks[j].heat
		}
		return blocks[i].d < blocks[j].d
	})
	return blocks
}

// loadHeap is an indexed binary min-heap over per-rank loads, ordered by
// (load, rank) so the minimum is always the least-loaded rank with ties
// to the lowest rank id. pos tracks each rank's heap slot so one rank's
// load can be bumped in O(log R) after assignment.
type loadHeap struct {
	load []uint64 // by rank
	heap []int    // rank ids, heap-ordered
	pos  []int    // rank -> index in heap
}

func newLoadHeap(ranks int) *loadHeap {
	h := &loadHeap{
		load: make([]uint64, ranks),
		heap: make([]int, ranks),
		pos:  make([]int, ranks),
	}
	for r := 0; r < ranks; r++ {
		h.heap[r] = r
		h.pos[r] = r
	}
	return h
}

func (h *loadHeap) less(i, j int) bool {
	a, b := h.heap[i], h.heap[j]
	if h.load[a] != h.load[b] {
		return h.load[a] < h.load[b]
	}
	return a < b
}

func (h *loadHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = i
	h.pos[h.heap[j]] = j
}

func (h *loadHeap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h.less(l, min) {
			min = l
		}
		if r < n && h.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		h.swap(i, min)
		i = min
	}
}

// min returns the least-loaded rank (lowest id on ties).
func (h *loadHeap) min() int { return h.heap[0] }

// add charges w to rank r and restores heap order.
func (h *loadHeap) add(r int, w uint64) {
	h.load[r] += w
	h.down(h.pos[r])
}

// Plan computes a greedy rebalancing of one allocation: blocks are
// assigned, hottest first, to the currently least-loaded rank, and a move
// is emitted whenever that differs from the block's present owner. The
// least-loaded lookup runs on an indexed min-heap — O(B log R) overall
// instead of the O(B·R) linear scan (see BenchmarkPlan for the gap at
// 4096 localities) — and ties go to the block's current owner, then the
// lowest rank, exactly as the linear scan resolved them. The plan is
// deterministic for a given heat snapshot.
func Plan(w *runtime.World, lay gas.Layout, heat map[gas.BlockID]uint64) []Move {
	blocks := blocksByHeat(w, lay, heat)
	h := newLoadHeap(w.Ranks())
	var moves []Move
	for _, bl := range blocks {
		best := h.min()
		if h.load[bl.owner] == h.load[best] {
			// The owner is tied with the global minimum: staying put is
			// free, so the tie goes to it.
			best = bl.owner
		}
		h.add(best, bl.heat)
		if best != bl.owner {
			moves = append(moves, Move{Block: bl.gva, To: best})
		}
	}
	return moves
}

// planLinear is the original O(blocks × ranks) least-loaded scan, kept
// unexported as the reference implementation for Plan's equivalence test
// and microbench.
func planLinear(w *runtime.World, lay gas.Layout, heat map[gas.BlockID]uint64) []Move {
	blocks := blocksByHeat(w, lay, heat)
	ranks := w.Ranks()
	loads := make([]uint64, ranks)
	var moves []Move
	for _, bl := range blocks {
		// Least-loaded rank, ties to the current owner then lowest rank.
		best := bl.owner
		for r := 0; r < ranks; r++ {
			if loads[r] < loads[best] {
				best = r
			}
		}
		loads[best] += bl.heat
		if best != bl.owner {
			moves = append(moves, Move{Block: bl.gva, To: best})
		}
	}
	return moves
}

// Apply issues the planned migrations from rank `from` and returns the
// futures to wait on.
func Apply(w *runtime.World, from int, moves []Move) []*runtime.LCORef {
	futs := make([]*runtime.LCORef, 0, len(moves))
	for _, mv := range moves {
		futs = append(futs, w.Proc(from).Migrate(mv.Block, mv.To))
	}
	return futs
}

// ApplyWait is Apply + wait: it returns the number of blocks that
// actually moved (migration status OK) and joins per-move failures —
// a refused move (pinned, bad target) or a failed wait reduces the count
// and contributes an error instead of being silently reported as moved.
func ApplyWait(w *runtime.World, from int, moves []Move) (int, error) {
	futs := Apply(w, from, moves)
	moved := 0
	var errs []error
	for i, f := range futs {
		v, err := w.Wait(f)
		if err != nil {
			errs = append(errs, fmt.Errorf("move block %v to rank %d: %w", moves[i].Block, moves[i].To, err))
			continue
		}
		if st := runtime.MigrateStatus(v); st != runtime.MigrateOK {
			errs = append(errs, fmt.Errorf("move block %v to rank %d: migrate status %d", moves[i].Block, moves[i].To, st))
			continue
		}
		moved++
	}
	return moved, errors.Join(errs...)
}

// Rebalance is HeatMap + Plan + ApplyWait against the world's live heat
// tracker. It returns the number of blocks that actually moved; the
// error joins every individual migration failure.
func Rebalance(w *runtime.World, from int, lay gas.Layout) (int, error) {
	heat := HeatMap(w, lay)
	if heat == nil {
		return 0, errors.New("loadbal: world has no heat tracker (set Config.Heat.Enabled)")
	}
	return ApplyWait(w, from, Plan(w, lay, heat))
}

// Consolidate moves every block of an allocation to one rank — the
// pointer-chase experiment's "create locality" step.
func Consolidate(w *runtime.World, from int, lay gas.Layout, to int) error {
	var futs []*runtime.LCORef
	for d := uint32(0); d < lay.NBlocks; d++ {
		futs = append(futs, w.Proc(from).Migrate(lay.BlockAt(d), to))
	}
	for _, f := range futs {
		if _, err := w.Wait(f); err != nil {
			return err
		}
	}
	return nil
}

// Imbalance returns max/mean of per-rank loads (1.0 = perfectly even).
func Imbalance(loads []uint64) float64 {
	if len(loads) == 0 {
		return 1
	}
	var sum, max uint64
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(loads))
	return float64(max) / mean
}
