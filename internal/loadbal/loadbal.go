// Package loadbal implements migration-based load balancing: a heat
// tracker fed by the runtime's data-path access hook, and a greedy
// rebalancer that turns observed imbalance into block migrations. This is
// the payoff side of the paper's argument — migration only matters if a
// policy can exploit it — and only the AGAS modes can apply its plans.
package loadbal

import (
	"sort"
	"sync"

	"nmvgas/internal/gas"
	"nmvgas/internal/runtime"
)

// Tracker accumulates per-block access counts per owner rank. Install it
// with Attach before the world starts.
type Tracker struct {
	mu    sync.Mutex
	heat  map[gas.BlockID]uint64
	byLoc []uint64
}

// Attach creates a tracker and hooks it into w's data path.
func Attach(w *runtime.World) *Tracker {
	t := &Tracker{
		heat:  make(map[gas.BlockID]uint64),
		byLoc: make([]uint64, w.Ranks()),
	}
	w.SetAccessHook(func(rank int, b gas.BlockID) {
		t.mu.Lock()
		t.heat[b]++
		t.byLoc[rank]++
		t.mu.Unlock()
	})
	return t
}

// Heat returns the access count recorded for block b.
func (t *Tracker) Heat(b gas.BlockID) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.heat[b]
}

// LoadOf returns the total accesses served by rank r.
func (t *Tracker) LoadOf(r int) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.byLoc[r]
}

// Reset clears all recorded heat (between measurement epochs).
func (t *Tracker) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.heat = make(map[gas.BlockID]uint64)
	for i := range t.byLoc {
		t.byLoc[i] = 0
	}
}

// Snapshot returns a copy of the block heat map.
func (t *Tracker) Snapshot() map[gas.BlockID]uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[gas.BlockID]uint64, len(t.heat))
	for b, h := range t.heat {
		out[b] = h
	}
	return out
}

// Move is one planned migration.
type Move struct {
	Block gas.GVA
	To    int
}

// blockLoad pairs a block of a layout with its heat and current owner.
type blockLoad struct {
	d     uint32
	gva   gas.GVA
	heat  uint64
	owner int
}

// Plan computes a greedy rebalancing of one allocation: blocks are
// assigned, hottest first, to the currently least-loaded rank, and a move
// is emitted whenever that differs from the block's present owner. The
// plan is deterministic for a given heat snapshot.
func Plan(w *runtime.World, lay gas.Layout, heat map[gas.BlockID]uint64) []Move {
	ranks := w.Ranks()
	loads := make([]uint64, ranks)
	var blocks []blockLoad
	for d := uint32(0); d < lay.NBlocks; d++ {
		g := lay.BlockAt(d)
		b := g.Block()
		home := lay.HomeOf(d)
		owner := home
		if dir := w.Locality(home).Directory(); dir != nil {
			owner = dir.Resolve(b, home)
		}
		blocks = append(blocks, blockLoad{d: d, gva: g, heat: heat[b], owner: owner})
	}
	sort.Slice(blocks, func(i, j int) bool {
		if blocks[i].heat != blocks[j].heat {
			return blocks[i].heat > blocks[j].heat
		}
		return blocks[i].d < blocks[j].d
	})
	var moves []Move
	for _, bl := range blocks {
		// Least-loaded rank, ties to the current owner then lowest rank.
		best := bl.owner
		for r := 0; r < ranks; r++ {
			if loads[r] < loads[best] {
				best = r
			}
		}
		loads[best] += bl.heat
		if best != bl.owner {
			moves = append(moves, Move{Block: bl.gva, To: best})
		}
	}
	return moves
}

// Apply issues the planned migrations from rank `from` and returns the
// futures to wait on.
func Apply(w *runtime.World, from int, moves []Move) []*runtime.LCORef {
	futs := make([]*runtime.LCORef, 0, len(moves))
	for _, mv := range moves {
		futs = append(futs, w.Proc(from).Migrate(mv.Block, mv.To))
	}
	return futs
}

// Rebalance is Plan + Apply + wait. It returns the number of blocks
// moved. The error is non-nil if any migration failed.
func Rebalance(w *runtime.World, from int, lay gas.Layout, t *Tracker) (int, error) {
	moves := Plan(w, lay, t.Snapshot())
	futs := Apply(w, from, moves)
	for _, f := range futs {
		v, err := w.Wait(f)
		if err != nil {
			return 0, err
		}
		if runtime.MigrateStatus(v) != runtime.MigrateOK {
			continue
		}
	}
	return len(moves), nil
}

// Consolidate moves every block of an allocation to one rank — the
// pointer-chase experiment's "create locality" step.
func Consolidate(w *runtime.World, from int, lay gas.Layout, to int) error {
	var futs []*runtime.LCORef
	for d := uint32(0); d < lay.NBlocks; d++ {
		futs = append(futs, w.Proc(from).Migrate(lay.BlockAt(d), to))
	}
	for _, f := range futs {
		if _, err := w.Wait(f); err != nil {
			return err
		}
	}
	return nil
}

// Imbalance returns max/mean of per-rank loads (1.0 = perfectly even).
func Imbalance(loads []uint64) float64 {
	if len(loads) == 0 {
		return 1
	}
	var sum, max uint64
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(loads))
	return float64(max) / mean
}
